package dist

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernel"
	"repro/internal/mps"
	"repro/internal/obs"
)

// pool runs one simulated process's intra-process work (state simulations,
// overlap batches) on a bounded set of goroutines — the analogue of the
// cores available inside one node of the cluster.
type pool struct {
	workers int
	// ws holds one overlap workspace per worker slot, created lazily and
	// reused across every runWS call of the process's lifetime (a
	// round-robin Gram makes one call per ring step; re-warming buffers
	// each step would forfeit the zero-realloc property).
	ws []*mps.Workspace
	// batch holds one banded-engine workspace per worker slot (each slot's
	// per-row gate-engine workspaces live inside it), threaded through the
	// shard-local band materialisation loops so cache misses simulate
	// through warmed zero-realloc buffers.
	batch []*mps.BatchSimWorkspace
}

// procPool sizes a process's worker pool: the k simulated processes share
// the physical machine, so each gets an equal slice of the kernel's
// concurrency bound (Quantum.Workers, defaulting to GOMAXPROCS), at least
// one worker.
func procPool(q *kernel.Quantum, k int) pool {
	total := q.Workers
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	w := total / k
	if w < 1 {
		w = 1
	}
	return pool{workers: w, ws: make([]*mps.Workspace, w), batch: make([]*mps.BatchSimWorkspace, w)}
}

// workspace returns worker slot g's reusable workspace. runWS calls never
// overlap in time for one pool and each slot is touched by one goroutine
// per call, so lazy creation is race-free.
func (pl pool) workspace(g int) *mps.Workspace {
	if pl.ws == nil {
		return mps.NewWorkspace()
	}
	if pl.ws[g] == nil {
		pl.ws[g] = mps.NewWorkspace()
	}
	return pl.ws[g]
}

// batchWorkspace returns worker slot g's reusable banded-engine workspace,
// under the same single-goroutine-per-slot discipline as workspace.
func (pl pool) batchWorkspace(g int) *mps.BatchSimWorkspace {
	if pl.batch == nil {
		return mps.NewBatchSimWorkspace()
	}
	if pl.batch[g] == nil {
		pl.batch[g] = mps.NewBatchSimWorkspace()
	}
	return pl.batch[g]
}

// run invokes f(i) for every i in [0,n), spreading the calls over the pool's
// workers. It returns once all calls have completed.
func (pl pool) run(n int, f func(i int)) {
	pl.runSlot(n, func(_, i int) { f(i) })
}

// runWS is run with a private overlap workspace per worker goroutine, so
// overlap batches reuse transfer-matrix buffers instead of allocating per
// pair. Workspaces are created lazily-cheap (buffers grow on first use), so
// run simply delegates here for non-overlap work.
func (pl pool) runWS(n int, f func(ws *mps.Workspace, i int)) {
	pl.runSlot(n, func(slot, i int) { f(pl.workspace(slot), i) })
}

// runSlot is the scheduling core: f(slot, i) for every i in [0,n), where
// slot identifies the worker goroutine so callers can attach per-worker
// scratch (overlap or simulation workspaces) to it.
func (pl pool) runSlot(n int, f func(slot, i int)) {
	if n <= 0 {
		return
	}
	w := pl.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(n) {
					return
				}
				f(g, int(i))
			}
		}(g)
	}
	wg.Wait()
}

// runErr is run for fallible tasks; it executes every task regardless of
// failures and returns the first error by task index.
func (pl pool) runErr(n int, f func(i int) error) error {
	errs := make([]error, n)
	pl.run(n, func(i int) {
		errs[i] = f(i)
	})
	return firstError(errs)
}

// simulateOwned materialises the states for the owned global indices of X
// through the cache-aware banded kernel path: the shard is cut into bands of
// q.BandWidth() rows, pool workers claim whole bands, and each band resolves
// through one batched cache lookup + one lockstep engine pass (one fused
// GEMM dispatch per gate position for the band). Results land in dst
// (parallel to owned) with per-process simulation/hit counts recorded into
// st. costs (parallel to owned; nil to skip) receives each row's share of
// its band's measured wall-clock — always positive, the per-row ground truth
// that calibrates EstimateRowCost. sp (nil to skip) receives one child span
// per row carrying the row index, cache outcome and resulting χ. Returns the
// first error by band; label names the shard in errors.
func simulateOwned(q *kernel.Quantum, X [][]float64, owned []int, dst []*mps.MPS, pl pool, st *ProcStats, label string, costs []time.Duration, sp *obs.Span) error {
	n := len(owned)
	if n == 0 {
		return nil
	}
	band := q.BandWidth()
	if band < 1 {
		band = 1
	}
	bands := (n + band - 1) / band
	hits := make([]bool, n)
	errs := make([]error, bands)
	pl.runSlot(bands, func(slot, bi int) {
		lo := bi * band
		hi := lo + band
		if hi > n {
			hi = n
		}
		rows := make([][]float64, hi-lo)
		for a := lo; a < hi; a++ {
			rows[a-lo] = X[owned[a]]
		}
		t0 := time.Now()
		sts, bandHits, err := q.StateBand(rows, pl.batchWorkspace(slot), sp)
		perRow := time.Since(t0) / time.Duration(hi-lo)
		if perRow <= 0 {
			perRow = time.Nanosecond
		}
		if err != nil {
			errs[bi] = simErrf(st.Rank, label, owned[lo], err)
			rowSp := sp.Child("row")
			rowSp.SetAttr("row", owned[lo])
			rowSp.SetAttr("error", err.Error())
			rowSp.End()
			return
		}
		for a := lo; a < hi; a++ {
			dst[a], hits[a] = sts[a-lo], bandHits[a-lo]
			if costs != nil {
				costs[a] = perRow
			}
			rowSp := sp.Child("row")
			rowSp.SetAttr("row", owned[a])
			rowSp.SetAttr("hit", bandHits[a-lo])
			rowSp.SetAttr("chi", sts[a-lo].MaxBond())
			rowSp.End()
		}
	})
	tallyHits(st, hits)
	return firstError(errs)
}

// tallyHits folds a per-state hit/miss bitmap into the process counters:
// hits came from the shared cache, misses were simulated locally.
func tallyHits(st *ProcStats, hits []bool) {
	for _, h := range hits {
		if h {
			st.CacheHits++
		} else {
			st.StatesSimulated++
		}
	}
}
