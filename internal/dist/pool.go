package dist

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/kernel"
)

// pool runs one simulated process's intra-process work (state simulations,
// overlap batches) on a bounded set of goroutines — the analogue of the
// cores available inside one node of the cluster.
type pool struct {
	workers int
}

// procPool sizes a process's worker pool: the k simulated processes share
// the physical machine, so each gets an equal slice of the kernel's
// concurrency bound (Quantum.Workers, defaulting to GOMAXPROCS), at least
// one worker.
func procPool(q *kernel.Quantum, k int) pool {
	total := q.Workers
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	w := total / k
	if w < 1 {
		w = 1
	}
	return pool{workers: w}
}

// run invokes f(i) for every i in [0,n), spreading the calls over the pool's
// workers. It returns once all calls have completed.
func (pl pool) run(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	w := pl.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i >= int64(n) {
					return
				}
				f(int(i))
			}
		}()
	}
	wg.Wait()
}

// runErr is run for fallible tasks; it executes every task regardless of
// failures and returns the first error by task index.
func (pl pool) runErr(n int, f func(i int) error) error {
	errs := make([]error, n)
	pl.run(n, func(i int) {
		errs[i] = f(i)
	})
	return firstError(errs)
}
