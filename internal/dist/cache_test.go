package dist

import (
	"math"
	"testing"

	"repro/internal/kernel"
	"repro/internal/mps"
	"repro/internal/statecache"
)

func cachedTestKernel(features int) *kernel.Quantum {
	q := testKernel(features)
	q.Cache = statecache.New(128 << 20)
	return q
}

// TestCachedStrategiesAgree: with a shared state cache both strategies still
// agree with the uncached serial path to 1e-12 (the acceptance tolerance;
// the states and contraction are in fact identical).
func TestCachedStrategiesAgree(t *testing.T) {
	X := testData(t, 11, 6)
	ref, err := testKernel(6).Gram(X)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{RoundRobin, NoMessaging} {
		res, err := ComputeGram(cachedTestKernel(6), X, Options{Procs: 3, Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for i := range ref {
			for j := range ref[i] {
				if math.Abs(ref[i][j]-res.Gram[i][j]) > 1e-12 {
					t.Fatalf("%v: entry (%d,%d) cached %v vs uncached %v", strat, i, j, res.Gram[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestNoMessagingCacheCollapsesRedundancy: the in-flight deduplication turns
// the strategy's redundant simulations into exactly n cluster-wide — the
// rest arrive as cache hits.
func TestNoMessagingCacheCollapsesRedundancy(t *testing.T) {
	n := 12
	X := testData(t, n, 6)
	q := cachedTestKernel(6)
	res, err := ComputeGram(q, X, Options{Procs: 4, Strategy: NoMessaging})
	if err != nil {
		t.Fatal(err)
	}
	if sims := res.TotalStatesSimulated(); sims != n {
		t.Fatalf("cached no-messaging simulated %d states, want exactly %d", sims, n)
	}
	if hits := res.TotalCacheHits(); hits == 0 {
		t.Fatal("cached no-messaging recorded no hits despite overlapping shards")
	}
}

// TestCrossReusesGramStates: after a ComputeGram on the training rows, the
// inference kernel simulates only the test rows — the entire training shard
// is served by the cache.
func TestCrossReusesGramStates(t *testing.T) {
	train := testData(t, 10, 6)
	test := testData(t, 17, 6)[10:] // disjoint rows from the same distribution
	q := cachedTestKernel(6)

	if _, err := ComputeGram(q, train, Options{Procs: 3, Strategy: RoundRobin}); err != nil {
		t.Fatal(err)
	}
	res, err := ComputeCross(q, test, train, Options{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sims := res.TotalStatesSimulated(); sims != len(test) {
		t.Fatalf("cross after gram simulated %d states, want only the %d test rows", sims, len(test))
	}
	if hits := res.TotalCacheHits(); hits < len(train) {
		t.Fatalf("cross after gram hit the cache %d times, want ≥ %d", hits, len(train))
	}

	ref, err := testKernel(6).Cross(test, train)
	if err != nil {
		t.Fatal(err)
	}
	checkAgree(t, "cached-cross", ref, res.Gram)
}

// TestResultStatesRetained: ComputeGram hands back the simulated training
// states under both strategies, indexed like the input rows.
func TestResultStatesRetained(t *testing.T) {
	X := testData(t, 9, 6)
	q := testKernel(6)
	for _, strat := range []Strategy{RoundRobin, NoMessaging} {
		res, err := ComputeGram(q, X, Options{Procs: 3, Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if len(res.States) != len(X) {
			t.Fatalf("%v: %d retained states for %d rows", strat, len(res.States), len(X))
		}
		for i, st := range res.States {
			if st == nil {
				t.Fatalf("%v: retained state %d is nil", strat, i)
			}
		}
		// The retained handles reproduce the Gram diagonal and a spot-check
		// row exactly.
		for i := range X {
			if v := mps.Overlap(res.States[i], res.States[i]); math.Abs(v-res.Gram[i][i]) > 1e-12 {
				t.Fatalf("%v: retained state %d self-overlap %v vs gram %v", strat, i, v, res.Gram[i][i])
			}
			if v := mps.Overlap(res.States[0], res.States[i]); math.Abs(v-res.Gram[0][i]) > 1e-12 {
				t.Fatalf("%v: retained states (0,%d) overlap %v vs gram %v", strat, i, v, res.Gram[0][i])
			}
		}
	}
}

// TestComputeCrossStates: inference from retained handles matches the
// simulate-everything path bit for bit, simulates only the test rows, and
// communicates nothing.
func TestComputeCrossStates(t *testing.T) {
	train := testData(t, 8, 6)
	test := testData(t, 13, 6)[8:]
	q := testKernel(6)

	gramRes, err := ComputeGram(q, train, Options{Procs: 3, Strategy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ComputeCross(q, test, train, Options{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ComputeCrossStates(q, test, gramRes.States, Options{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkAgree(t, "cross-from-states", ref.Gram, res.Gram)
	if sims := res.TotalStatesSimulated(); sims != len(test) {
		t.Fatalf("cross-from-states simulated %d states, want %d", sims, len(test))
	}
	if res.TotalBytes() != 0 || res.TotalMessages() != 0 {
		t.Fatalf("cross-from-states communicated: %d bytes, %d messages", res.TotalBytes(), res.TotalMessages())
	}
	wantPairs := len(test) * len(train)
	pairs := 0
	for _, ps := range res.Procs {
		pairs += ps.InnerProducts
	}
	if pairs != wantPairs {
		t.Fatalf("cross-from-states computed %d inner products, want %d", pairs, wantPairs)
	}
}

func TestComputeCrossStatesRejectsNil(t *testing.T) {
	test := testData(t, 2, 6)
	if _, err := ComputeCrossStates(testKernel(6), test, make([]*mps.MPS, 3), Options{Procs: 2}); err == nil {
		t.Fatal("nil training state accepted")
	}
}

// TestComputeCrossStatesRejectsWidthMismatch: handles from a different-width
// ansatz must surface as an error (the simulate-everything path's
// behaviour), never a panic in the overlap zipper.
func TestComputeCrossStatesRejectsWidthMismatch(t *testing.T) {
	train := testData(t, 4, 6)
	gramRes, err := ComputeGram(testKernel(6), train, Options{Procs: 2, Strategy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	narrow := testKernel(5)
	if _, err := ComputeCrossStates(narrow, testData(t, 2, 5), gramRes.States, Options{Procs: 2}); err == nil {
		t.Fatal("6-qubit training states accepted by a 5-qubit ansatz")
	}
}

// TestCachedRaceStress runs both strategies concurrently against one shared
// cache — the -race check for the cache-threaded simulation paths.
func TestCachedRaceStress(t *testing.T) {
	X := testData(t, 8, 5)
	q := cachedTestKernel(5)
	done := make(chan error, 2)
	go func() {
		_, err := ComputeGram(q, X, Options{Procs: 3, Strategy: RoundRobin})
		done <- err
	}()
	go func() {
		_, err := ComputeGram(q, X, Options{Procs: 2, Strategy: NoMessaging})
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
