package dist

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// FaultTransport is the chaos wrapper: it decorates any Transport with
// deterministic, seeded fault injection — message drops, delivery delays,
// duplicate delivery, transient send failures and whole-rank crashes — so
// the recovery machinery in the strategies (deadlines, send retry, dead-rank
// row recovery) can be exercised reproducibly in tests and smoke runs. The
// wrapper never changes payloads: a fault either loses, repeats or delays a
// message, or kills a rank outright, and the metamorphic suite asserts the
// recovered Gram is still bit-identical to the serial path.
//
// Every fault decision is a pure function of (Seed, fault kind, sender,
// receiver, per-sender sequence number), so the same plan over the same
// schedule injects exactly the same faults on every run and every transport.

// FaultPlan configures which faults fire. The zero value injects nothing.
type FaultPlan struct {
	// Seed drives every fault decision; two runs with the same plan and the
	// same message schedule inject identical faults.
	Seed uint64
	// DropProb is the probability a message is silently lost in transit
	// (the sender believes it was delivered).
	DropProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// DelayProb is the probability a message is held for Delay before
	// entering the wire.
	DelayProb float64
	// Delay is the hold applied to delayed messages.
	Delay time.Duration
	// SendFailProb is the probability a send fails with a transient error
	// (nothing enters the wire; the sender's retry budget applies).
	SendFailProb float64
	// CrashRanks lists ranks that crash at the start of the exchange phase:
	// every Send and Recv on a crashed rank fails with ErrRankCrashed, and
	// surviving ranks are handed a *RankFailedError envelope per crashed
	// peer. Ignored for single-rank networks (a crash there would be a
	// whole-cluster loss, not a recoverable fault).
	CrashRanks []int
}

// crashes returns the deduplicated in-range crash set for a k-rank network.
func (p FaultPlan) crashes(k int) []int {
	if k <= 1 {
		return nil
	}
	set := map[int]bool{}
	for _, r := range p.CrashRanks {
		if r >= 0 && r < k {
			set[r] = true
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// FaultStats counts the faults a FaultTransport actually injected, summed
// over every network it built.
type FaultStats struct {
	Dropped      int64 // messages silently lost
	Duplicated   int64 // messages delivered twice
	Delayed      int64 // messages held for Plan.Delay
	SendFailures int64 // injected transient send errors
	CrashedSends int64 // sends refused because the sending rank had crashed
}

// FaultTransport wraps Inner with the fault plan. Use one value per
// experiment and read Stats afterwards; the strategies' own ProcStats
// (Retries, Timeouts, RecoveredRows) report the recovery side.
type FaultTransport struct {
	Inner Transport
	Plan  FaultPlan

	dropped      atomic.Int64
	duplicated   atomic.Int64
	delayed      atomic.Int64
	sendFailures atomic.Int64
	crashedSends atomic.Int64
}

// Name prefixes the wrapped wire's name, e.g. "fault+tcp".
func (t *FaultTransport) Name() string { return "fault+" + TransportName(t.Inner) }

// Stats snapshots the injected-fault counters.
func (t *FaultTransport) Stats() FaultStats {
	return FaultStats{
		Dropped:      t.dropped.Load(),
		Duplicated:   t.duplicated.Load(),
		Delayed:      t.delayed.Load(),
		SendFailures: t.sendFailures.Load(),
		CrashedSends: t.crashedSends.Load(),
	}
}

// Network wires the inner transport and attaches the fault plan.
func (t *FaultTransport) Network(k int) (Network, error) {
	inner := t.Inner
	if inner == nil {
		inner = ChanTransport{}
	}
	crashes := t.Plan.crashes(k)
	if k > 1 && len(crashes) == k {
		return nil, fmt.Errorf("dist: fault plan crashes all %d ranks — no survivor could recover", k)
	}
	in, err := inner.Network(k)
	if err != nil {
		return nil, err
	}
	n := &faultNetwork{t: t, inner: in, k: k, seq: make([]int, k), crashed: make([]bool, k)}
	for _, r := range crashes {
		n.crashed[r] = true
	}
	return n, nil
}

type faultNetwork struct {
	t       *FaultTransport
	inner   Network
	k       int
	seq     []int // per-sender message sequence; endpoints are single-goroutine
	crashed []bool
}

func (n *faultNetwork) Endpoint(rank int) Endpoint {
	ep := &faultEndpoint{n: n, rank: rank, inner: n.inner.Endpoint(rank)}
	if !n.crashed[rank] {
		// A surviving rank learns about every crashed peer through failure
		// envelopes, delivered ahead of any data so recovery can start
		// without burning a deadline on a shard that will never arrive.
		for c, dead := range n.crashed {
			if dead {
				ep.pendingDead = append(ep.pendingDead, c)
			}
		}
	}
	return ep
}

func (n *faultNetwork) Close() error { return n.inner.Close() }

type faultEndpoint struct {
	n           *faultNetwork
	rank        int
	inner       Endpoint
	pendingDead []int // crashed peers not yet reported through Recv
}

// Fault kinds salt the decision hash so each fault draws independently.
const (
	faultKindDrop = iota + 1
	faultKindDup
	faultKindDelay
	faultKindSendFail
)

// roll draws the deterministic fault decision for one (kind, message) pair
// as a uniform value in [0, 1).
func (t *FaultTransport) roll(kind, from, to, seq int) float64 {
	x := t.Plan.Seed ^ uint64(kind)<<48 ^ uint64(from)<<32 ^ uint64(to)<<16 ^ uint64(seq)
	return float64(splitmix64(x)>>11) / float64(1<<53)
}

func (e *faultEndpoint) Send(to int, s Shard) (int64, error) {
	t := e.n.t
	if e.n.crashed[e.rank] {
		t.crashedSends.Add(1)
		return 0, ErrRankCrashed
	}
	seq := e.n.seq[e.rank]
	e.n.seq[e.rank]++
	p := t.Plan
	if p.SendFailProb > 0 && t.roll(faultKindSendFail, e.rank, to, seq) < p.SendFailProb {
		t.sendFailures.Add(1)
		return 0, fmt.Errorf("dist: injected transient send failure %d→%d (seq %d)", e.rank, to, seq)
	}
	if p.DropProb > 0 && t.roll(faultKindDrop, e.rank, to, seq) < p.DropProb {
		// The wire eats the message: the sender sees a successful, fully
		// accounted send, the receiver sees nothing — exactly a loss after
		// the local write succeeded.
		t.dropped.Add(1)
		return s.WireBytes(), nil
	}
	if p.DelayProb > 0 && p.Delay > 0 && t.roll(faultKindDelay, e.rank, to, seq) < p.DelayProb {
		t.delayed.Add(1)
		time.Sleep(p.Delay)
	}
	b, err := e.inner.Send(to, s)
	if err != nil {
		return b, err
	}
	if p.DupProb > 0 && t.roll(faultKindDup, e.rank, to, seq) < p.DupProb {
		// Deliver the message twice; the wire accounting counts it once
		// (duplication is the network's fault, not the sender's traffic).
		t.duplicated.Add(1)
		if _, derr := e.inner.Send(to, s); derr != nil {
			return b, derr
		}
	}
	return b, nil
}

func (e *faultEndpoint) Recv(timeout time.Duration) (Shard, error) {
	if e.n.crashed[e.rank] {
		return Shard{}, ErrRankCrashed
	}
	if len(e.pendingDead) > 0 {
		c := e.pendingDead[0]
		e.pendingDead = e.pendingDead[1:]
		return Shard{}, &RankFailedError{Rank: c}
	}
	return e.inner.Recv(timeout)
}

// splitmix64 is the avalanche hash behind every deterministic draw in this
// package (fault rolls, retry jitter); same core as SimTransport's jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// retryBackoff is the pause before retry attempt n (1-based): base·2^(n−1),
// capped at 32·base, plus up to +50% deterministic jitter so simultaneous
// retriers decorrelate without losing reproducibility.
func retryBackoff(base time.Duration, attempt int, seed uint64) time.Duration {
	if base <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 5 {
		shift = 5
	}
	d := base << uint(shift)
	frac := float64(splitmix64(seed^uint64(attempt)<<32)>>11) / float64(1<<53)
	return d + time.Duration(frac*0.5*float64(d))
}
