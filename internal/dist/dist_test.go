package dist

import (
	"math"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/dataset"
	"repro/internal/kernel"
)

// testData returns n rescaled rows with the given feature count.
func testData(t *testing.T, n, features int) [][]float64 {
	t.Helper()
	fit := n
	if fit < 16 {
		fit = 16
	}
	full := dataset.GenerateElliptic(dataset.EllipticConfig{
		Features: features, NumIllicit: fit, NumLicit: fit, Seed: 3,
	})
	sc, err := dataset.FitScaler(full)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := sc.Transform(full)
	if err != nil {
		t.Fatal(err)
	}
	return scaled.X[:n]
}

func testKernel(features int) *kernel.Quantum {
	return &kernel.Quantum{
		Ansatz: circuit.Ansatz{Qubits: features, Layers: 2, Distance: 2, Gamma: 0.7},
	}
}

func checkAgree(t *testing.T, name string, ref, got [][]float64) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: %d rows, want %d", name, len(got), len(ref))
	}
	for i := range ref {
		if len(got[i]) != len(ref[i]) {
			t.Fatalf("%s: row %d has %d cols, want %d", name, i, len(got[i]), len(ref[i]))
		}
		for j := range ref[i] {
			if math.Abs(ref[i][j]-got[i][j]) > 1e-8 {
				t.Fatalf("%s: entry (%d,%d) differs: %v vs %v", name, i, j, got[i][j], ref[i][j])
			}
		}
	}
}

func TestStrategyString(t *testing.T) {
	if RoundRobin.String() != "round-robin" || NoMessaging.String() != "no-messaging" {
		t.Fatalf("strategy names wrong: %q, %q", RoundRobin, NoMessaging)
	}
	if s := Strategy(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown strategy should name its value, got %q", s)
	}
}

func TestParseStrategyRoundTrips(t *testing.T) {
	for _, s := range []Strategy{RoundRobin, NoMessaging} {
		got, err := ParseStrategy(s.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Fatalf("parse(%q) = %v", s, got)
		}
	}
	if _, err := ParseStrategy("telepathy"); err == nil {
		t.Fatal("unknown name must error")
	}
}

// TestGramAgreesWithSerial is the package-local version of the integration
// suite's metamorphic relation: every (strategy × procs) combination must
// reproduce the serial Gram matrix to 1e-8.
func TestGramAgreesWithSerial(t *testing.T) {
	X := testData(t, 11, 8)
	q := testKernel(8)
	ref, err := q.Gram(X)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{RoundRobin, NoMessaging} {
		for _, k := range []int{1, 2, 5} {
			res, err := ComputeGram(q, X, Options{Procs: k, Strategy: strat})
			if err != nil {
				t.Fatalf("%v procs=%d: %v", strat, k, err)
			}
			checkAgree(t, strat.String(), ref, res.Gram)
			if len(res.Procs) != k {
				t.Fatalf("%v procs=%d: %d stats entries", strat, k, len(res.Procs))
			}
		}
	}
}

// TestProcsExceedDataSize: more processes than states must still work, with
// the excess processes idle.
func TestProcsExceedDataSize(t *testing.T) {
	X := testData(t, 3, 6)
	q := testKernel(6)
	ref, err := q.Gram(X)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{RoundRobin, NoMessaging} {
		res, err := ComputeGram(q, X, Options{Procs: 5, Strategy: strat})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		checkAgree(t, strat.String(), ref, res.Gram)
		if len(res.Procs) != 5 {
			t.Fatalf("%v: want 5 proc stats, got %d", strat, len(res.Procs))
		}
		for _, ps := range res.Procs[3:] {
			if ps.StatesSimulated != 0 || ps.InnerProducts != 0 {
				t.Fatalf("%v: idle proc %d did work: %+v", strat, ps.Rank, ps)
			}
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	X := testData(t, 9, 6)
	q := testKernel(6)

	nm, err := ComputeGram(q, X, Options{Procs: 3, Strategy: NoMessaging})
	if err != nil {
		t.Fatal(err)
	}
	if nm.TotalBytes() != 0 || nm.TotalMessages() != 0 {
		t.Fatalf("no-messaging communicated: %d bytes, %d messages", nm.TotalBytes(), nm.TotalMessages())
	}

	rr, err := ComputeGram(q, X, Options{Procs: 3, Strategy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if rr.TotalBytes() <= 0 {
		t.Fatalf("round-robin on 3 procs sent %d bytes", rr.TotalBytes())
	}
	// Ring exchange: every process sends its shard to each of the other two.
	if rr.TotalMessages() != 3*2 {
		t.Fatalf("round-robin on 3 procs sent %d messages, want 6", rr.TotalMessages())
	}
	// Single process: nothing to exchange.
	solo, err := ComputeGram(q, X, Options{Procs: 1, Strategy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if solo.TotalBytes() != 0 || solo.TotalMessages() != 0 {
		t.Fatalf("1-proc round-robin communicated: %+v", solo.Procs[0])
	}
}

// TestPhaseTimes: phases are elapsed wall-clock inside each process's own
// timeline, so they are non-negative and their sum over all processes is
// bounded by Wall × procs.
func TestPhaseTimes(t *testing.T) {
	X := testData(t, 10, 6)
	q := testKernel(6)
	for _, strat := range []Strategy{RoundRobin, NoMessaging} {
		res, err := ComputeGram(q, X, Options{Procs: 3, Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		if res.Wall <= 0 {
			t.Fatalf("%v: non-positive wall %v", strat, res.Wall)
		}
		var sum int64
		for _, ps := range res.Procs {
			if ps.SimTime < 0 || ps.InnerTime < 0 || ps.CommTime < 0 {
				t.Fatalf("%v: negative phase time: %+v", strat, ps)
			}
			sum += int64(ps.SimTime + ps.InnerTime + ps.CommTime)
		}
		if sum > int64(res.Wall)*int64(len(res.Procs)) {
			t.Fatalf("%v: phase sum %v exceeds wall %v × %d procs", strat, sum, res.Wall, len(res.Procs))
		}
		sim, inner, comm := res.MaxPhaseTimes()
		if sim < 0 || inner < 0 || comm < 0 || sim+inner+comm > res.Wall*3 {
			t.Fatalf("%v: implausible max phase times %v/%v/%v for wall %v", strat, sim, inner, comm, res.Wall)
		}
	}
}

// TestWorkAccounting checks the strategies' structural signatures: both
// compute exactly the n(n+1)/2 upper-triangle overlaps once, round-robin
// simulates each state exactly once cluster-wide, and no-messaging pays
// redundant simulations for its silence.
func TestWorkAccounting(t *testing.T) {
	n := 12
	X := testData(t, n, 6)
	q := testKernel(6)
	wantPairs := n * (n + 1) / 2

	totals := map[Strategy]int{}
	for _, strat := range []Strategy{RoundRobin, NoMessaging} {
		res, err := ComputeGram(q, X, Options{Procs: 4, Strategy: strat})
		if err != nil {
			t.Fatal(err)
		}
		pairs, sims := 0, 0
		for _, ps := range res.Procs {
			pairs += ps.InnerProducts
			sims += ps.StatesSimulated
		}
		if pairs != wantPairs {
			t.Fatalf("%v: %d inner products, want %d", strat, pairs, wantPairs)
		}
		totals[strat] = sims
	}
	if totals[RoundRobin] != n {
		t.Fatalf("round-robin simulated %d states, want exactly %d", totals[RoundRobin], n)
	}
	if totals[NoMessaging] <= n {
		t.Fatalf("no-messaging simulated %d states, expected redundancy beyond %d", totals[NoMessaging], n)
	}
}

func TestComputeCrossAgreesWithSerial(t *testing.T) {
	X := testData(t, 13, 6)
	testRows, trainRows := X[:4], X[4:]
	q := testKernel(6)
	ref, err := q.Cross(testRows, trainRows)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 6} {
		res, err := ComputeCross(q, testRows, trainRows, Options{Procs: k})
		if err != nil {
			t.Fatalf("procs=%d: %v", k, err)
		}
		checkAgree(t, "cross", ref, res.Gram)
		pairs := 0
		for _, ps := range res.Procs {
			pairs += ps.InnerProducts
		}
		if pairs != len(testRows)*len(trainRows) {
			t.Fatalf("procs=%d: %d inner products, want %d", k, pairs, len(testRows)*len(trainRows))
		}
	}
}

func TestValidation(t *testing.T) {
	X := testData(t, 4, 6)
	q := testKernel(6)
	if _, err := ComputeGram(nil, X, Options{Procs: 2, Strategy: RoundRobin}); err == nil {
		t.Fatal("nil kernel must error")
	}
	if _, err := ComputeGram(q, X, Options{Procs: -2, Strategy: RoundRobin}); err == nil {
		t.Fatal("negative procs must error")
	}
	if _, err := ComputeGram(q, X, Options{Procs: 2, Strategy: Strategy(42)}); err == nil {
		t.Fatal("unknown strategy must error")
	}
	if _, err := ComputeCross(nil, X, X, Options{Procs: 2}); err == nil {
		t.Fatal("nil kernel must error on cross")
	}
	if _, err := ComputeCross(q, X, X, Options{Procs: -1}); err == nil {
		t.Fatal("negative procs must error on cross")
	}
}

// TestSimulationErrorsPropagate: a malformed row (wrong feature count) must
// surface as an error from every path without deadlocking the exchange.
func TestSimulationErrorsPropagate(t *testing.T) {
	X := testData(t, 6, 6)
	bad := make([][]float64, len(X))
	copy(bad, X)
	bad[3] = []float64{0.5} // wrong dimension for an 6-qubit ansatz
	q := testKernel(6)
	for _, strat := range []Strategy{RoundRobin, NoMessaging} {
		if _, err := ComputeGram(q, bad, Options{Procs: 3, Strategy: strat}); err == nil {
			t.Fatalf("%v: malformed row must error", strat)
		}
	}
	if _, err := ComputeCross(q, bad, X, Options{Procs: 3}); err == nil {
		t.Fatal("cross with malformed test row must error")
	}
	if _, err := ComputeCross(q, X, bad, Options{Procs: 3}); err == nil {
		t.Fatal("cross with malformed train row must error")
	}
}

func TestEmptyInput(t *testing.T) {
	q := testKernel(6)
	res, err := ComputeGram(q, nil, Options{Procs: 2, Strategy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Gram) != 0 {
		t.Fatalf("empty input produced %d rows", len(res.Gram))
	}
	cross, err := ComputeCross(q, nil, testData(t, 2, 6), Options{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(cross.Gram) != 0 {
		t.Fatalf("empty test set produced %d rows", len(cross.Gram))
	}
}
