package dist

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// snapshotEventCounts flattens a trace snapshot into event-name → count.
func snapshotEventCounts(tr *obs.Trace) map[string]int {
	out := map[string]int{}
	for _, sp := range tr.Snapshot().Spans {
		for _, ev := range sp.Events {
			out[ev.Name]++
		}
	}
	return out
}

// spanNames flattens a trace snapshot into span-name → count.
func spanNames(tr *obs.Trace) map[string]int {
	out := map[string]int{}
	for _, sp := range tr.Snapshot().Spans {
		out[sp.Name]++
	}
	return out
}

// TestGramTraceSpanTree: a healthy round-robin Gram under a trace records
// one rank span per process (on its own track), each carrying the
// simulate/exchange phases, with one row span per owned training row.
func TestGramTraceSpanTree(t *testing.T) {
	X := testData(t, 12, 6)
	q := testKernel(6)
	tr := obs.NewTrace(obs.NewID(), "gram")
	const procs = 3
	res, err := ComputeGram(q, X, Options{Procs: procs, Strategy: RoundRobin, Span: tr.Root()})
	if err != nil {
		t.Fatal(err)
	}
	tr.Root().End()

	names := spanNames(tr)
	tracks := map[int]bool{}
	for _, sp := range tr.Snapshot().Spans {
		if sp.Track != 0 {
			tracks[sp.Track] = true
		}
	}
	for p := 0; p < procs; p++ {
		if names["rank "+string(rune('0'+p))] != 1 {
			t.Errorf("rank %d span count = %d, want 1", p, names["rank "+string(rune('0'+p))])
		}
		if !tracks[p+1] {
			t.Errorf("no span on track %d (rank %d's timeline)", p+1, p)
		}
	}
	for _, phase := range []string{"simulate", "exchange_send", "local_triangle", "exchange_recv"} {
		if names[phase] != procs {
			t.Errorf("%q span count = %d, want %d (one per rank)", phase, names[phase], procs)
		}
	}
	if names["row"] != len(X) {
		t.Errorf("row span count = %d, want %d (one per training row)", names["row"], len(X))
	}
	// Every row span must carry its row index and χ attrs.
	for _, sp := range tr.Snapshot().Spans {
		if sp.Name != "row" {
			continue
		}
		if _, ok := sp.Attrs["row"]; !ok {
			t.Fatalf("row span %d missing 'row' attr: %v", sp.ID, sp.Attrs)
		}
		if _, ok := sp.Attrs["chi"]; !ok {
			t.Fatalf("row span %d missing 'chi' attr: %v", sp.ID, sp.Attrs)
		}
	}
	// Healthy run: no fault-path events anywhere in the tree.
	evs := snapshotEventCounts(tr)
	for _, name := range []string{"retry", "timeout", "recovered_rows", "crashed", "rank_dead", "send_failure"} {
		if evs[name] != 0 {
			t.Errorf("healthy run recorded %d %q events, want 0", evs[name], name)
		}
	}
	if res.TotalRetries()+res.TotalTimeouts()+res.TotalRecoveredRows() != 0 {
		t.Fatalf("healthy run has nonzero fault counters: %+v", res.Procs)
	}
}

// TestChaosTraceEventsMatchCounters: under seeded chaos the trace's
// fault-path events appear exactly when the corresponding ProcStats
// counters are nonzero — the trace is a faithful narration of the
// recovery machinery, not a parallel guess.
func TestChaosTraceEventsMatchCounters(t *testing.T) {
	cases := []chaosCase{
		{name: "drop-all", plan: FaultPlan{Seed: 5, DropProb: 1},
			deadline: 150 * time.Millisecond, wantTimeouts: true, wantRecovered: true},
		{name: "send-fail-retry", plan: FaultPlan{Seed: 9, SendFailProb: 0.6},
			deadline: 150 * time.Millisecond, retries: 6, wantRetries: true},
		{name: "crash-one", plan: FaultPlan{Seed: 1, CrashRanks: []int{1}},
			deadline: 2 * time.Second, wantRecovered: true},
		{name: "dup-all", plan: FaultPlan{Seed: 7, DupProb: 1},
			deadline: 2 * time.Second, wantDups: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			X := testData(t, 12, 6)
			q := testKernel(6)
			ref, err := q.Gram(X)
			if err != nil {
				t.Fatal(err)
			}
			ft := &FaultTransport{Inner: ChanTransport{}, Plan: tc.plan}
			tr := obs.NewTrace(obs.NewID(), "chaos-gram")
			res, err := ComputeGram(q, X, Options{
				Procs: 3, Strategy: RoundRobin, Transport: ft,
				Deadline: tc.deadline, MaxRetries: tc.retries, Backoff: time.Millisecond,
				Span: tr.Root(),
			})
			if err != nil {
				t.Fatal(err)
			}
			tr.Root().End()
			checkIdentical(t, tc.name, ref, res.Gram)

			evs := snapshotEventCounts(tr)
			type pair struct {
				event   string
				counter int
			}
			for _, p := range []pair{
				{"retry", res.TotalRetries()},
				{"timeout", res.TotalTimeouts()},
				{"dup_dropped", res.TotalDupsDropped()},
			} {
				if (evs[p.event] > 0) != (p.counter > 0) {
					t.Errorf("%s: %d %q events but counter=%d — trace and counters disagree",
						tc.name, evs[p.event], p.event, p.counter)
				}
			}
			// recovered_rows events are per recovering (rank, lost-rank) pair;
			// their summed rows attr must equal the counter.
			recovered := 0
			for _, sp := range tr.Snapshot().Spans {
				for _, ev := range sp.Events {
					if ev.Name == "recovered_rows" {
						if n, ok := ev.Attrs["rows"].(int); ok {
							recovered += n
						}
					}
				}
			}
			if recovered != res.TotalRecoveredRows() {
				t.Errorf("%s: recovered_rows events sum to %d, counter says %d",
					tc.name, recovered, res.TotalRecoveredRows())
			}
			if tc.wantRecovered && snapshotNames(tr)["recover"] == 0 {
				t.Errorf("%s: rows were recovered but no recover span recorded", tc.name)
			}
		})
	}
}

// snapshotNames is spanNames under a name the chaos test reads naturally.
func snapshotNames(tr *obs.Trace) map[string]int { return spanNames(tr) }
