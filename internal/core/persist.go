// Model persistence: a versioned binary codec (fixed header + gob payload)
// for trained models, so a model fitted once — the expensive, distributed
// stage — can be loaded by a separate server process (internal/serve,
// `qkernel serve`) and answer prediction requests online.
//
// The file captures everything inference needs: the framework options (the
// ansatz hyperparameters and runtime knobs), the trained SVM (reusing the
// validated JSON codec of internal/svm), the training rows and labels, and —
// when the model retained them — the simulated training states themselves
// (mps.MarshalBinary payloads), so a loaded model predicts communication-free
// without re-simulating a single training row. The kernel's simulation-context
// fingerprint is embedded and re-verified on load: any drift between the
// saving and loading binaries' ansatz/simulator semantics (or an attempt to
// tune sim-relevant options at load time) is rejected instead of silently
// producing wrong kernels.
package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/conformal"
	"repro/internal/dist"
	"repro/internal/mps"
	"repro/internal/svm"
)

// modelMagic identifies serialised model files; modelVersion is bumped on any
// incompatible layout change. Version 2 added the conformal-calibration
// block; gob decodes missing fields to their zero values, so version-1 files
// (score-only by definition) are still read — DecodeModel accepts both.
const (
	modelMagic      uint32 = 0x514b4d31 // "QKM1"
	modelVersion    uint32 = 2
	minModelVersion uint32 = 1
)

// modelFile is the gob payload of a serialised model. All sim-relevant fields
// are duplicated from Options explicitly (rather than gob-encoding Options
// itself) so adding an Options field can never silently change the on-disk
// layout.
type modelFile struct {
	Features, Layers, Distance int
	Gamma, C                   float64
	Procs                      int
	Strategy                   string
	// Transport is the flag-style wire name (dist.ParseTransport). Like
	// Procs it is a runtime knob, not a sim-relevant option: a loader may
	// re-tune it freely, and cost-model parameters (SimTransport's latency/
	// bandwidth knobs) are deliberately not persisted — set them through the
	// LoadModelTuned hook. Empty in files written before the field existed,
	// which reads as the chan default.
	Transport          string
	UseParallelBackend bool
	CacheBytes         int64
	// CalibFrac / Alpha are the conformal-calibration options the model was
	// trained under; zero on score-only models (and in every version-1
	// file, where the fields do not exist and gob-decode to zero).
	CalibFrac, Alpha float64

	// ConformalAlpha / ConformalPos / ConformalNeg persist the calibrated
	// split-conformal predictor: the miscoverage rate and the sorted
	// per-class calibration nonconformity scores. All empty on a score-only
	// model — and since gob omits zero-value fields on encode, an
	// uncalibrated version-2 payload is byte-identical to a version-1 one.
	ConformalAlpha float64
	ConformalPos   []float64
	ConformalNeg   []float64

	// Fingerprint is the kernel simulation-context fingerprint at save time.
	Fingerprint string
	// SVM is the trained solver in its validated JSON form.
	SVM []byte
	// TrainX / TrainY are the training rows (already rescaled into (0,2))
	// and their ±1 labels.
	TrainX [][]float64
	TrainY []int
	// States holds one mps.MarshalBinary payload per training row when the
	// model retained its handles; empty when it did not (the loaded model
	// then re-simulates training rows through the state cache on demand).
	States [][]byte
}

// Save writes the model to path atomically (unique temp file in the target
// directory + rename), so a server watching the path can never observe a
// torn write — even with concurrent Save calls racing on the same path.
func (m *Model) Save(path string) error {
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return err
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		// Keep the temp file on the destination's filesystem: os.CreateTemp
		// with "" means os.TempDir(), and renaming from tmpfs would fail
		// with a cross-device link error.
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("core: saving model: %w", err)
	}
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: saving model: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: saving model: %w", err)
	}
	return nil
}

// Encode serialises the model: an 8-byte header (magic, version) followed by
// the gob payload. Only models produced by Fit (or a prior LoadModel) carry
// the training context required to round-trip; hand-assembled models are
// rejected.
func (m *Model) Encode(w io.Writer) error {
	if m == nil || m.SVM == nil {
		return fmt.Errorf("core: cannot encode nil model")
	}
	if m.fingerprint == "" {
		return fmt.Errorf("core: model has no training context (not produced by Fit/LoadModel)")
	}
	svmBlob, err := json.Marshal(m.SVM)
	if err != nil {
		return fmt.Errorf("core: encoding svm: %w", err)
	}
	mf := modelFile{
		Features: m.opts.Features, Layers: m.opts.Layers, Distance: m.opts.Distance,
		Gamma: m.opts.Gamma, C: m.opts.C, Procs: m.opts.Procs,
		Strategy: m.opts.Strategy.String(),
		// A chaos-wrapped wire persists as its underlying transport: fault
		// injection is a per-run experiment, not part of the model, and
		// "fault+tcp" would not round-trip through ParseTransport on load.
		Transport:          dist.TransportName(dist.BaseTransport(m.opts.Transport)),
		UseParallelBackend: m.opts.UseParallelBackend,
		CacheBytes:         m.opts.CacheBytes,
		CalibFrac:          m.opts.CalibFrac,
		Alpha:              m.opts.Alpha,
		Fingerprint:        m.fingerprint,
		SVM:                svmBlob,
		TrainX:             m.TrainX,
		TrainY:             m.TrainY,
	}
	if m.Conformal != nil {
		mf.ConformalAlpha = m.Conformal.Alpha
		mf.ConformalPos = m.Conformal.Pos
		mf.ConformalNeg = m.Conformal.Neg
	}
	if m.States != nil {
		mf.States = make([][]byte, len(m.States))
		for i, st := range m.States {
			blob, err := st.MarshalBinary()
			if err != nil {
				return fmt.Errorf("core: encoding training state %d: %w", i, err)
			}
			mf.States[i] = blob
		}
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], modelMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], modelVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: writing model header: %w", err)
	}
	if err := gob.NewEncoder(w).Encode(&mf); err != nil {
		return fmt.Errorf("core: encoding model: %w", err)
	}
	return nil
}

// LoadModel reads a model saved by Save, rebuilding the framework it was
// trained under. See DecodeModel for the integrity guarantees.
func LoadModel(path string) (*Framework, *Model, error) {
	return LoadModelTuned(path, nil)
}

// LoadModelTuned is LoadModel with a hook to adjust runtime options (Procs,
// CacheBytes, C, Strategy, Transport) before the framework is rebuilt — the knobs a
// serving process re-tunes for its own hardware. Changing any option that
// affects the simulation itself (ansatz shape, γ, backend) is detected by the
// fingerprint check and rejected: the stored states and SVM were trained
// under the saved context and would be silently wrong under another.
func LoadModelTuned(path string, tune func(*Options)) (*Framework, *Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("core: loading model: %w", err)
	}
	defer f.Close()
	return DecodeModel(f, tune)
}

// DecodeModel reconstructs a framework/model pair from an Encode stream,
// verifying the header, the simulation-context fingerprint, and the
// structural consistency of the payload (rows ↔ labels ↔ SVM coefficients ↔
// states). tune may be nil.
func DecodeModel(r io.Reader, tune func(*Options)) (*Framework, *Model, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("core: truncated model header: %w", err)
	}
	if mg := binary.LittleEndian.Uint32(hdr[0:4]); mg != modelMagic {
		return nil, nil, fmt.Errorf("core: not a model file (magic 0x%08x)", mg)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v < minModelVersion || v > modelVersion {
		return nil, nil, fmt.Errorf("core: unsupported model version %d (this binary reads %d..%d)", v, minModelVersion, modelVersion)
	}
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return nil, nil, fmt.Errorf("core: decoding model: %w", err)
	}
	strategy, err := dist.ParseStrategy(mf.Strategy)
	if err != nil {
		return nil, nil, fmt.Errorf("core: decoding model: %w", err)
	}
	// The chan wire is Options' nil default (dist.TransportName(nil) ==
	// "chan"), so it decodes back to nil and default options round-trip
	// exactly; "" is a file written before the field existed.
	var transport dist.Transport
	if mf.Transport != "" && mf.Transport != dist.TransportName(nil) {
		if transport, err = dist.ParseTransport(mf.Transport); err != nil {
			return nil, nil, fmt.Errorf("core: decoding model: %w", err)
		}
	}
	opts := Options{
		Features: mf.Features, Layers: mf.Layers, Distance: mf.Distance,
		Gamma: mf.Gamma, C: mf.C, Procs: mf.Procs, Strategy: strategy, Transport: transport,
		UseParallelBackend: mf.UseParallelBackend, CacheBytes: mf.CacheBytes,
		CalibFrac: mf.CalibFrac, Alpha: mf.Alpha,
	}
	if tune != nil {
		tune(&opts)
	}
	fw, err := New(opts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: rebuilding framework: %w", err)
	}
	if fp := fw.q.Fingerprint(); fp != mf.Fingerprint {
		return nil, nil, fmt.Errorf("core: simulation context mismatch: model saved under %q, loader built %q (codec drift, or tuning touched a sim-relevant option)", mf.Fingerprint, fp)
	}

	if len(mf.TrainX) == 0 || len(mf.TrainX) != len(mf.TrainY) {
		return nil, nil, fmt.Errorf("core: model has %d training rows for %d labels", len(mf.TrainX), len(mf.TrainY))
	}
	for i, row := range mf.TrainX {
		if len(row) != fw.opts.Features {
			return nil, nil, fmt.Errorf("core: training row %d has %d features, model has %d", i, len(row), fw.opts.Features)
		}
	}
	sv := new(svm.Model)
	if err := json.Unmarshal(mf.SVM, sv); err != nil {
		return nil, nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if len(sv.Alpha) != len(mf.TrainY) {
		return nil, nil, fmt.Errorf("core: svm has %d coefficients for %d training rows", len(sv.Alpha), len(mf.TrainY))
	}
	// Rehydrate the training states only within the loader's memory policy:
	// a negative (tuned) budget is the documented memory-for-compute
	// opt-out, and retainStates also drops a set whose payload alone would
	// exceed a positive budget — the same rules Fit applies.
	var states []*mps.MPS
	if len(mf.States) > 0 && fw.cacheBudget >= 0 {
		if len(mf.States) != len(mf.TrainX) {
			return nil, nil, fmt.Errorf("core: model has %d states for %d training rows", len(mf.States), len(mf.TrainX))
		}
		states = make([]*mps.MPS, len(mf.States))
		for i, blob := range mf.States {
			st, err := mps.UnmarshalBinary(blob, fw.q.Config)
			if err != nil {
				return nil, nil, fmt.Errorf("core: decoding training state %d: %w", i, err)
			}
			if st.N != fw.opts.Features {
				return nil, nil, fmt.Errorf("core: training state %d has %d qubits, model has %d", i, st.N, fw.opts.Features)
			}
			states[i] = st
		}
		states = fw.retainStates(states)
	}
	// Rehydrate the conformal predictor when the file carries one; a
	// score-only file (every version-1 file, or a version-2 save with
	// CalibFrac = 0) leaves it nil and the model serves scores exactly as
	// before calibration existed.
	var pred *conformal.Predictor
	if len(mf.ConformalPos) > 0 || len(mf.ConformalNeg) > 0 {
		pred = &conformal.Predictor{Alpha: mf.ConformalAlpha, Pos: mf.ConformalPos, Neg: mf.ConformalNeg}
		if err := pred.Validate(); err != nil {
			return nil, nil, fmt.Errorf("core: decoding model: %w", err)
		}
	}
	m := &Model{
		SVM: sv, TrainX: mf.TrainX, TrainY: mf.TrainY, States: states,
		Conformal: pred,
		opts:      fw.opts, fingerprint: mf.Fingerprint,
	}
	return fw, m, nil
}
