package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/statecache"
	"repro/internal/svm"
)

func preparedData(t *testing.T, features, size int) (train, test *dataset.Dataset) {
	t.Helper()
	full := dataset.GenerateElliptic(dataset.EllipticConfig{
		Features: features, NumIllicit: size, NumLicit: size, Seed: 1,
	})
	tr, te, err := dataset.PrepareSplit(full, size, features, 1)
	if err != nil {
		t.Fatal(err)
	}
	return tr, te
}

func TestNewValidatesOptions(t *testing.T) {
	if _, err := New(Options{Features: 0}); err == nil {
		t.Fatal("zero features must error")
	}
	if _, err := New(Options{Features: 4, Distance: 9}); err == nil {
		t.Fatal("distance ≥ features must error")
	}
	fw, err := New(Options{Features: 8})
	if err != nil {
		t.Fatal(err)
	}
	if fw.opts.Layers != 2 || fw.opts.Gamma != 0.1 || fw.opts.Procs != 1 {
		t.Fatalf("defaults wrong: %+v", fw.opts)
	}
}

func TestFitPredictRoundTrip(t *testing.T) {
	train, test := preparedData(t, 24, 120)
	fw, err := New(Options{Features: 24, Gamma: 0.1, Procs: 2, Strategy: dist.RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	model, report, err := fw.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if report.GramWall <= 0 || report.BestC <= 0 || report.SupportVecs == 0 {
		t.Fatalf("report incomplete: %+v", report)
	}
	if report.TrainAUC < 0.5 {
		t.Fatalf("train AUC %v below chance", report.TrainAUC)
	}
	scores, err := fw.Predict(model, test.X)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != test.Len() {
		t.Fatalf("%d scores for %d rows", len(scores), test.Len())
	}
	met, err := fw.Evaluate(model, test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(met.AUC) || met.AUC < 0.6 {
		t.Fatalf("test metrics implausible: %+v", met)
	}
}

func TestFitFixedC(t *testing.T) {
	train, _ := preparedData(t, 10, 40)
	fw, err := New(Options{Features: 10, C: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := fw.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if report.BestC != 0.5 {
		t.Fatalf("fixed C not honoured: %v", report.BestC)
	}
}

func TestFitErrors(t *testing.T) {
	fw, err := New(Options{Features: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fw.Fit([][]float64{{1, 1, 1, 1}}, []int{1, -1}); err == nil {
		t.Fatal("row/label mismatch must error")
	}
	if _, err := fw.Predict(nil, nil); err == nil {
		t.Fatal("nil model must error")
	}
}

func TestNoMessagingStrategyWorks(t *testing.T) {
	train, _ := preparedData(t, 8, 32)
	fwRR, err := New(Options{Features: 8, Procs: 3, Strategy: dist.RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	fwNM, err := New(Options{Features: 8, Procs: 3, Strategy: dist.NoMessaging})
	if err != nil {
		t.Fatal(err)
	}
	m1, r1, err := fwRR.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	m2, r2, err := fwNM.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	// Same data, same kernel ⇒ equivalent models. The Gram entries can
	// differ in the last ulp between strategies (⟨a|b⟩ vs ⟨b|a⟩ ordering),
	// which may flip SMO pair choices, so allow a small metric wobble.
	if math.Abs(r1.TrainAUC-r2.TrainAUC) > 0.05 {
		t.Fatalf("strategies disagree: %v vs %v", r1.TrainAUC, r2.TrainAUC)
	}
	if r2.BytesSent != 0 {
		t.Fatal("no-messaging must not communicate")
	}
	_ = m1
	_ = m2
}

// TestPredictZeroResimulation is the tentpole acceptance check: after Fit,
// the model retains its training-state handles, so Predict simulates only
// the new rows — asserted through the cache counters (every simulation is a
// recorded miss) — and a refit over the same rows is served entirely from
// the cache.
func TestPredictZeroResimulation(t *testing.T) {
	train, test := preparedData(t, 8, 24)
	fw, err := New(Options{Features: 8, C: 1, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	model, report, err := fw.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if report.CacheMisses != train.Len() || report.CacheHits != 0 {
		t.Fatalf("cold fit: hits/misses %d/%d, want 0/%d", report.CacheHits, report.CacheMisses, train.Len())
	}
	if len(model.States) != train.Len() {
		t.Fatalf("model retains %d states for %d training rows", len(model.States), train.Len())
	}

	before := fw.CacheStats()
	if _, err := fw.Predict(model, test.X); err != nil {
		t.Fatal(err)
	}
	after := fw.CacheStats()
	if sims := after.Misses - before.Misses; sims != int64(test.Len()) {
		t.Fatalf("predict simulated %d states, want only the %d test rows", sims, test.Len())
	}
	if after.Hits != before.Hits {
		t.Fatalf("predict touched the cache for training states (%d new hits); handles should bypass it", after.Hits-before.Hits)
	}

	// A refit over the same rows is fully warm.
	_, report2, err := fw.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if report2.CacheHits != train.Len() || report2.CacheMisses != 0 || report2.CacheHitRate != 1 {
		t.Fatalf("warm refit: %+v", report2)
	}

	// Dropping the handles falls back to the cache — still no simulations.
	model.States = nil
	mid := fw.CacheStats()
	if _, err := fw.Predict(model, test.X); err != nil {
		t.Fatal(err)
	}
	end := fw.CacheStats()
	if end.Misses != mid.Misses {
		t.Fatalf("handle-less predict re-simulated %d states despite a warm cache", end.Misses-mid.Misses)
	}
}

// TestRetentionHonoursBudget: a tiny positive budget keeps the cache
// bounded AND stops the model from pinning a training-state set larger than
// that budget — Predict degrades to re-simulation instead of OOM.
func TestRetentionHonoursBudget(t *testing.T) {
	train, test := preparedData(t, 8, 16)
	fw, err := New(Options{Features: 8, C: 1, CacheBytes: 1024}) // far below the states' payload
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := fw.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if model.States != nil {
		t.Fatalf("model pinned %d states past a 1 KiB budget", len(model.States))
	}
	if s := fw.CacheStats(); s.Bytes > s.Budget {
		t.Fatalf("cache over budget: %+v", s)
	}
	if _, err := fw.Predict(model, test.X); err != nil {
		t.Fatal(err)
	}
}

// TestPredictWidthMismatchErrors: retained handles from one framework fed
// through a narrower one must error, not panic.
func TestPredictWidthMismatchErrors(t *testing.T) {
	train, _ := preparedData(t, 8, 16)
	wide, err := New(Options{Features: 8, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := wide.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := New(Options{Features: 6, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	narrowRows := make([][]float64, 2)
	for i := range narrowRows {
		narrowRows[i] = train.X[i][:6]
	}
	if _, err := narrow.Predict(model, narrowRows); err == nil {
		t.Fatal("8-qubit retained states accepted by a 6-qubit framework")
	}
}

// TestCacheDisabled: a negative budget switches caching off end to end.
func TestCacheDisabled(t *testing.T) {
	train, _ := preparedData(t, 8, 16)
	fw, err := New(Options{Features: 8, C: 1, CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	model, report, err := fw.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if report.CacheHits != 0 || report.CacheHitRate != 0 {
		t.Fatalf("disabled cache reported hits: %+v", report)
	}
	if s := fw.CacheStats(); s != (statecache.Stats{}) {
		t.Fatalf("disabled cache has stats %+v", s)
	}
	// The memory opt-out also drops the retained handles: nothing pins the
	// training states, and Predict falls back to re-simulation.
	if model.States != nil {
		t.Fatalf("CacheBytes<0 still retained %d states", len(model.States))
	}
	if _, err := fw.Predict(model, train.X[:4]); err != nil {
		t.Fatal(err)
	}
}

func TestSelectCDegenerateFallback(t *testing.T) {
	// Validation slice (every 5th sample) single-class → fallback C=1.
	gram := [][]float64{
		{1, 0, 0, 0, 0},
		{0, 1, 0, 0, 0},
		{0, 0, 1, 0, 0},
		{0, 0, 0, 1, 0},
		{0, 0, 0, 0, 1},
	}
	// Index 4 is the only validation sample → one class there.
	y := []int{1, -1, 1, -1, 1}
	c, err := selectC(gram, y)
	if err != nil {
		t.Fatal(err)
	}
	if c != 1.0 {
		t.Fatalf("degenerate split should fall back to C=1, got %v", c)
	}
}

func TestEvaluateMatchesManualPath(t *testing.T) {
	train, test := preparedData(t, 10, 40)
	fw, err := New(Options{Features: 10, C: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := fw.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := fw.Predict(model, test.X)
	if err != nil {
		t.Fatal(err)
	}
	met1, err := fw.Evaluate(model, test.X, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	met2, err := svm.Evaluate(scores, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if met1.AUC != met2.AUC || met1.Accuracy != met2.Accuracy {
		t.Fatalf("Evaluate disagrees with manual path: %+v vs %+v", met1, met2)
	}
}
