package core

import (
	"errors"
	"testing"

	"repro/internal/conformal"
	"repro/internal/dataset"
)

// TestNewValidatesCalibOptions: CalibFrac outside (0, 0.5] and Alpha outside
// (0,1) are rejected; enabling calibration without choosing α picks the
// package default.
func TestNewValidatesCalibOptions(t *testing.T) {
	if _, err := New(Options{Features: 4, CalibFrac: 0.6}); err == nil {
		t.Fatal("CalibFrac > 0.5 must error")
	}
	if _, err := New(Options{Features: 4, CalibFrac: -0.1}); err == nil {
		t.Fatal("negative CalibFrac must error")
	}
	if _, err := New(Options{Features: 4, CalibFrac: 0.25, Alpha: 1.5}); err == nil {
		t.Fatal("Alpha ≥ 1 must error")
	}
	fw, err := New(Options{Features: 4, CalibFrac: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if fw.Options().Alpha != conformal.DefaultAlpha {
		t.Fatalf("Alpha default = %v, want %v", fw.Options().Alpha, conformal.DefaultAlpha)
	}
	// Alpha without CalibFrac is inert, not an error: a score-only pipeline.
	if _, err := New(Options{Features: 4, Alpha: 0.2}); err != nil {
		t.Fatal(err)
	}
}

// TestCalibSplitDeterministic: the partition is a pure function of (n, frac),
// covers all rows exactly once, and lands near the requested fraction.
func TestCalibSplitDeterministic(t *testing.T) {
	for _, tc := range []struct {
		n      int
		frac   float64
		stride int
	}{
		{100, 0.25, 4},
		{100, 0.5, 2},
		{100, 0.1, 10},
		{7, 0.25, 4},
	} {
		proper, calib := calibSplit(tc.n, tc.frac)
		if len(proper)+len(calib) != tc.n {
			t.Fatalf("n=%d frac=%v: %d+%d rows", tc.n, tc.frac, len(proper), len(calib))
		}
		seen := make(map[int]bool, tc.n)
		for _, i := range append(append([]int(nil), proper...), calib...) {
			if seen[i] {
				t.Fatalf("n=%d frac=%v: index %d assigned twice", tc.n, tc.frac, i)
			}
			seen[i] = true
		}
		for _, i := range calib {
			if i%tc.stride != tc.stride-1 {
				t.Fatalf("n=%d frac=%v: calibration index %d off the stride-%d lattice", tc.n, tc.frac, i, tc.stride)
			}
		}
		p2, c2 := calibSplit(tc.n, tc.frac)
		if len(p2) != len(proper) || len(c2) != len(calib) {
			t.Fatalf("split not deterministic for n=%d frac=%v", tc.n, tc.frac)
		}
	}
}

// TestFitCalibrated is the tentpole integration check: Fit with CalibFrac
// holds out the calibration partition, trains the SVM on the proper subset
// only, and the resulting model serves prediction sets consistent with its
// raw scores.
func TestFitCalibrated(t *testing.T) {
	// A seed verified to give held-out coverage well above the marginal
	// guarantee (one draw of a ≥1−α-in-expectation quantity; the
	// multi-draw statistical assertions live in internal/conformal).
	full := dataset.GenerateElliptic(dataset.EllipticConfig{
		Features: 12, NumIllicit: 150, NumLicit: 150, Seed: 2,
	})
	train, test, err := dataset.PrepareSplit(full, 200, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	const alpha = 0.2
	fw, err := New(Options{Features: 12, C: 1, CalibFrac: 0.25, Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	model, report, err := fw.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Calibrated || report.Alpha != alpha {
		t.Fatalf("report not calibrated: %+v", report)
	}
	if !model.Calibrated() {
		t.Fatal("model.Calibrated() = false after calibrated fit")
	}
	proper, calib := calibSplit(len(train.Y), 0.25)
	if report.CalibRows != len(calib) {
		t.Fatalf("CalibRows = %d, want %d", report.CalibRows, len(calib))
	}
	if len(model.TrainX) != len(proper) || len(model.TrainY) != len(proper) {
		t.Fatalf("model holds %d/%d training rows, want proper subset %d", len(model.TrainX), len(model.TrainY), len(proper))
	}
	if len(model.SVM.Alpha) != len(proper) {
		t.Fatalf("SVM has %d coefficients, want %d (trained on proper subset only)", len(model.SVM.Alpha), len(proper))
	}
	if model.States != nil && len(model.States) != len(proper) {
		t.Fatalf("model retained %d states, want %d", len(model.States), len(proper))
	}
	// Coverage on the calibration partition itself is ≥ 1−α by construction
	// of the thresholds (deterministic, not statistical).
	if report.CalibCoverage.Coverage < 1-alpha {
		t.Fatalf("calibration-partition coverage %v < %v", report.CalibCoverage.Coverage, 1-alpha)
	}

	// PredictSets ≡ Predict scores fed through the model's own predictor.
	preds, err := fw.PredictSets(model, test.X)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := fw.Predict(model, test.X)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(scores) {
		t.Fatalf("%d predictions for %d scores", len(preds), len(scores))
	}
	for i, s := range scores {
		want := model.Conformal.Predict(s)
		got := preds[i]
		if got.Confidence != want.Confidence || got.PPos != want.PPos || got.PNeg != want.PNeg || len(got.Set) != len(want.Set) {
			t.Fatalf("row %d: PredictSets %+v disagrees with Conformal.Predict %+v", i, got, want)
		}
	}

	// Held-out empirical coverage fluctuates around 1−α; this seed's draw
	// was verified at 0.90, so a 0.10 slack still catches regressions.
	cov, err := model.Conformal.Coverage(scores, test.Y)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Coverage < 1-alpha-0.10 {
		t.Fatalf("held-out coverage %v implausibly low for α=%v", cov.Coverage, alpha)
	}
}

// TestPredictSetsRequiresCalibration: a score-only model answers PredictSets
// with the typed error.
func TestPredictSetsRequiresCalibration(t *testing.T) {
	train, test := preparedData(t, 8, 24)
	fw, err := New(Options{Features: 8, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	model, report, err := fw.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	if report.Calibrated || model.Calibrated() {
		t.Fatal("score-only fit reports calibrated")
	}
	if _, err := fw.PredictSets(model, test.X); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("PredictSets on score-only model: got %v, want ErrNotCalibrated", err)
	}
}
