package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"path/filepath"
	"testing"
)

func fitSmallModel(t *testing.T, opts Options) (*Framework, *Model, [][]float64) {
	t.Helper()
	train, test := preparedData(t, opts.Features, 16)
	fw, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := fw.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	return fw, model, test.X
}

// TestSaveLoadPredictEquivalence is the persistence acceptance check: a model
// saved to disk and loaded by a fresh framework must score new rows exactly
// as the in-process model does — including the retained training states, so
// the loaded model predicts without re-simulating a single training row.
func TestSaveLoadPredictEquivalence(t *testing.T) {
	fw, model, testX := fitSmallModel(t, Options{Features: 8, C: 1, Procs: 2})
	want, err := fw.Predict(model, testX)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	fw2, model2, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(model2.States) != len(model.States) {
		t.Fatalf("loaded model has %d states, want %d", len(model2.States), len(model.States))
	}
	if fw2.Options() != fw.Options() {
		t.Fatalf("options did not round-trip: %+v vs %+v", fw2.Options(), fw.Options())
	}

	before := fw2.CacheStats()
	got, err := fw2.Predict(model2, testX)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d scores, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score %d differs after round-trip: %v vs %v", i, got[i], want[i])
		}
	}
	// Loaded states serve inference directly: only the test rows simulate.
	after := fw2.CacheStats()
	if sims := after.Misses - before.Misses; sims != int64(len(testX)) {
		t.Fatalf("loaded model simulated %d states, want only the %d test rows", sims, len(testX))
	}

	// A loaded model carries its training context and can be re-saved.
	var buf bytes.Buffer
	if err := model2.Encode(&buf); err != nil {
		t.Fatalf("re-encoding a loaded model: %v", err)
	}
}

// TestSaveLoadWithoutStates: a model that dropped its handles (memory opt-out)
// still round-trips; the loaded model re-simulates training rows on demand and
// scores identically.
func TestSaveLoadWithoutStates(t *testing.T) {
	fw, model, testX := fitSmallModel(t, Options{Features: 6, C: 1, CacheBytes: -1})
	if model.States != nil {
		t.Fatal("opt-out model unexpectedly retained states")
	}
	want, err := fw.Predict(model, testX)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := model.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	fw2, model2, err := DecodeModel(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if model2.States != nil {
		t.Fatalf("stateless model decoded with %d states", len(model2.States))
	}
	got, err := fw2.Predict(model2, testX)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestLoadModelTuned: runtime knobs may change at load; sim-relevant options
// are locked by the fingerprint.
func TestLoadModelTuned(t *testing.T) {
	_, model, _ := fitSmallModel(t, Options{Features: 6, C: 1, Procs: 1})
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}

	fw, _, err := LoadModelTuned(path, func(o *Options) { o.Procs = 3; o.CacheBytes = 1 << 20 })
	if err != nil {
		t.Fatal(err)
	}
	if got := fw.Options(); got.Procs != 3 || got.CacheBytes != 1<<20 {
		t.Fatalf("tuning not applied: %+v", got)
	}

	if _, _, err := LoadModelTuned(path, func(o *Options) { o.Gamma = 0.9 }); err == nil {
		t.Fatal("tuning γ must be rejected by the fingerprint check")
	}
	if _, _, err := LoadModelTuned(path, func(o *Options) { o.Layers = 5 }); err == nil {
		t.Fatal("tuning the ansatz must be rejected by the fingerprint check")
	}

	// The memory-for-compute opt-out holds at load time too: a negative
	// tuned budget must not pin the saved training states.
	fwOff, mOff, err := LoadModelTuned(path, func(o *Options) { o.CacheBytes = -1 })
	if err != nil {
		t.Fatal(err)
	}
	if mOff.States != nil {
		t.Fatalf("CacheBytes<0 load still pinned %d states", len(mOff.States))
	}
	if _, err := fwOff.Predict(mOff, mOff.TrainX[:2]); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsHandAssembledModel(t *testing.T) {
	_, model, _ := fitSmallModel(t, Options{Features: 6, C: 1})
	bare := &Model{SVM: model.SVM, TrainX: model.TrainX, TrainY: model.TrainY}
	var buf bytes.Buffer
	if err := bare.Encode(&buf); err == nil {
		t.Fatal("model without training context must not encode")
	}
	var nilModel *Model
	if err := nilModel.Encode(&buf); err == nil {
		t.Fatal("nil model must not encode")
	}
}

// TestSaveLoadCalibrated: the conformal predictor round-trips — a loaded
// model serves identical prediction sets and reports Calibrated.
func TestSaveLoadCalibrated(t *testing.T) {
	train, test := preparedData(t, 8, 40)
	fw, err := New(Options{Features: 8, C: 1, CalibFrac: 0.25, Alpha: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := fw.Fit(train.X, train.Y)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fw.PredictSets(model, test.X)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := model.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	fw2, model2, err := DecodeModel(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !model2.Calibrated() {
		t.Fatal("calibrated model decoded as score-only")
	}
	if got := fw2.Options(); got.CalibFrac != 0.25 || got.Alpha != 0.2 {
		t.Fatalf("calibration options did not round-trip: %+v", got)
	}
	if model2.Conformal.Alpha != model.Conformal.Alpha ||
		len(model2.Conformal.Pos) != len(model.Conformal.Pos) ||
		len(model2.Conformal.Neg) != len(model.Conformal.Neg) {
		t.Fatalf("predictor did not round-trip: %+v vs %+v", model2.Conformal, model.Conformal)
	}
	got, err := fw2.PredictSets(model2, test.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Confidence != want[i].Confidence || got[i].PPos != want[i].PPos ||
			got[i].PNeg != want[i].PNeg || len(got[i].Set) != len(want[i].Set) {
			t.Fatalf("prediction %d differs after round-trip: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestVersion1BackwardCompat: a pre-conformal (version-1) model file still
// loads and scores bit-identically. The fixture is honest: an uncalibrated
// version-2 payload is byte-identical to a version-1 payload (gob omits
// zero-value fields), so patching the header version to 1 reconstructs
// exactly what the old binary wrote.
func TestVersion1BackwardCompat(t *testing.T) {
	fw, model, testX := fitSmallModel(t, Options{Features: 6, C: 1})
	want, err := fw.Predict(model, testX)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint32(v1[4:8], 1)

	fw2, model2, err := DecodeModel(bytes.NewReader(v1), nil)
	if err != nil {
		t.Fatalf("version-1 file rejected: %v", err)
	}
	if model2.Calibrated() {
		t.Fatal("version-1 model decoded as calibrated")
	}
	if model2.Conformal != nil {
		t.Fatal("version-1 model carries a conformal predictor")
	}
	got, err := fw2.Predict(model2, testX)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score %d differs on version-1 load: %v vs %v", i, got[i], want[i])
		}
	}
	if _, err := fw2.PredictSets(model2, testX); !errors.Is(err, ErrNotCalibrated) {
		t.Fatalf("PredictSets on version-1 model: got %v, want ErrNotCalibrated", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	_, model, _ := fitSmallModel(t, Options{Features: 6, C: 1})
	var buf bytes.Buffer
	if err := model.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()

	if _, _, err := DecodeModel(bytes.NewReader(blob[:5]), nil); err == nil {
		t.Fatal("truncated header must error")
	}
	if _, _, err := DecodeModel(bytes.NewReader(blob[:len(blob)/2]), nil); err == nil {
		t.Fatal("truncated payload must error")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, _, err := DecodeModel(bytes.NewReader(bad), nil); err == nil {
		t.Fatal("bad magic must error")
	}
	bad = append([]byte(nil), blob...)
	bad[4] = 99 // version
	if _, _, err := DecodeModel(bytes.NewReader(bad), nil); err == nil {
		t.Fatal("unknown version must error")
	}
}
