// Package core is the top-level facade of the quantum kernel framework — the
// paper's primary contribution assembled from its substrates: it wires the
// feature-map ansatz (internal/circuit), the MPS simulator (internal/mps),
// the kernel machinery (internal/kernel), the distributed runtime
// (internal/dist) and the SVM (internal/svm) into a single train/predict
// pipeline mirroring the workflow of section III-B:
//
//	fw := core.New(core.Options{Features: 50, Layers: 2, Distance: 1, Gamma: 0.5})
//	model, report, err := fw.Fit(trainX, trainY)
//	scores, err := fw.Predict(model, testX)
//
// Data passed to Fit/Predict must already be rescaled into the (0,2)
// interval (see internal/dataset.PrepareSplit, which performs the paper's
// preprocessing).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/circuit"
	"repro/internal/conformal"
	"repro/internal/conformal/sdt"
	"repro/internal/dist"
	"repro/internal/kernel"
	"repro/internal/mps"
	"repro/internal/obs"
	"repro/internal/statecache"
	"repro/internal/svm"
)

// DefaultCacheBytes is the default χ-aware state-cache budget (256 MiB):
// roughly 10⁵ low-χ training states, or a few hundred at the paper's
// largest bond dimensions.
const DefaultCacheBytes int64 = 256 << 20

// Options configures the framework.
type Options struct {
	// Features is the data dimension; one qubit per feature.
	Features int
	// Layers is the ansatz repetition count r (default 2).
	Layers int
	// Distance is the qubit interaction distance d (default 1).
	Distance int
	// Gamma is the kernel bandwidth γ (default 0.1).
	Gamma float64
	// C is the SVM box constraint; 0 sweeps the paper's grid [0.01, 4] and
	// keeps the best model by training-kernel AUC.
	C float64
	// Procs is the number of simulated distributed processes for Gram
	// computation (default 1 = single process).
	Procs int
	// Strategy selects the distribution scheme (default RoundRobin).
	Strategy dist.Strategy
	// Transport selects the wire carrying shard messages between the
	// distributed processes (nil = dist.ChanTransport, the zero-cost
	// in-process channels). The kernel matrices are transport-independent;
	// only the communication instrumentation changes.
	Transport dist.Transport
	// DistDeadline bounds each shard receive during distributed exchanges;
	// a shard that misses the deadline is recovered locally via the
	// no-messaging path (0 = dist.DefaultDeadline, negative disables the
	// deadline and waits forever).
	DistDeadline time.Duration
	// DistRetries bounds the retry attempts for a shard send that fails
	// with a transient wire error (0 = dist.DefaultMaxRetries, negative
	// disables retrying).
	DistRetries int
	// DistBackoff is the base exponential backoff between send retries
	// (0 = dist.DefaultBackoff).
	DistBackoff time.Duration
	// UseParallelBackend switches the MPS simulator to the
	// accelerator-role backend (worthwhile only at large bond dimension —
	// see the Fig. 5 crossover).
	UseParallelBackend bool
	// CacheBytes bounds the χ-aware simulated-state cache shared by Fit
	// and Predict (0 selects DefaultCacheBytes; negative disables caching
	// entirely). The budget is charged by actual MPS payload, so it adapts
	// to the ansatz's bond dimension. A negative value is the full
	// memory-for-compute opt-out: it also stops Fit from retaining the
	// training-state handles on the Model, so Predict re-simulates the
	// training rows instead of pinning them in memory.
	CacheBytes int64
	// BatchBand is the banded state-materialisation width: the kernel
	// simulates rows in lockstep bands of this many circuits, fusing each
	// gate position's contractions into one batched GEMM dispatch. 0 selects
	// automatically from the core count and the cache budget; 1 degenerates
	// to row-at-a-time simulation. Results are bit-identical at every width.
	BatchBand int
	// CalibFrac enables conformal calibration: the fraction of training
	// rows Fit holds out (deterministically, every ⌊1/CalibFrac⌋-th row) as
	// the split-conformal calibration partition. The SVM is trained on the
	// remaining rows only, the calibration rows' decision scores build a
	// conformal.Predictor stored on the Model, and PredictSets then returns
	// prediction sets with coverage ≥ 1−Alpha. 0 disables calibration (the
	// score-only pipeline, unchanged); valid values lie in (0, 0.5].
	CalibFrac float64
	// Alpha is the conformal miscoverage rate α (target coverage 1−α).
	// Used only when CalibFrac > 0; 0 selects conformal.DefaultAlpha (0.1).
	Alpha float64
}

func (o Options) withDefaults() Options {
	if o.Layers == 0 {
		o.Layers = 2
	}
	if o.Distance == 0 {
		o.Distance = 1
	}
	if o.Gamma == 0 {
		o.Gamma = 0.1
	}
	if o.Procs == 0 {
		o.Procs = 1
	}
	if o.CalibFrac > 0 && o.Alpha == 0 {
		o.Alpha = conformal.DefaultAlpha
	}
	return o
}

// Framework is a configured quantum-kernel classification pipeline.
type Framework struct {
	opts Options
	// cacheBudget is the resolved byte budget (Options.CacheBytes with the
	// zero-means-default rule applied; negative = caching and handle
	// retention disabled).
	cacheBudget int64
	q           *kernel.Quantum

	// commMu guards comm and rowCosts, the cumulative wire activity and
	// per-row materialisation costs of every distributed kernel computation
	// this framework has run (Fit and Predict).
	commMu   sync.Mutex
	comm     CommStats
	rowCosts RowCostSummary
}

// RowCostSummary condenses measured per-row state-materialisation wall-clock
// (dist.Result.ObservedRowCosts) into the moments an operator — and the
// ROADMAP's self-tuning distribution item — needs: how many rows were
// measured, the spread, and the total. Served in /stats and narrated in the
// FitReport.
type RowCostSummary struct {
	Count int           `json:"count"`
	Min   time.Duration `json:"min"`
	Mean  time.Duration `json:"mean"`
	Max   time.Duration `json:"max"`
	Total time.Duration `json:"total"`
}

// SummarizeRowCosts folds observed per-row costs into a summary, skipping
// zero entries (rows another rank owned, or never measured).
func SummarizeRowCosts(costs []time.Duration) RowCostSummary {
	var s RowCostSummary
	for _, c := range costs {
		if c <= 0 {
			continue
		}
		if s.Count == 0 || c < s.Min {
			s.Min = c
		}
		if c > s.Max {
			s.Max = c
		}
		s.Total += c
		s.Count++
	}
	if s.Count > 0 {
		s.Mean = s.Total / time.Duration(s.Count)
	}
	return s
}

// merge folds another summary into s (cumulative accounting across
// computations).
func (s *RowCostSummary) merge(o RowCostSummary) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 || o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Total += o.Total
	s.Count += o.Count
	s.Mean = s.Total / time.Duration(s.Count)
}

// CommStats aggregates the distributed-wire activity of a framework: how
// many kernel computations ran, what they sent, and the summed per-process
// communication wall-clock. Exposed by the serving layer's /stats and
// /metrics so an operator sees what the configured transport is costing.
type CommStats struct {
	// Transport is the flag-style name of the configured wire.
	Transport string `json:"transport"`
	// Computations counts distributed Gram/cross computations run.
	Computations int64 `json:"computations"`
	// Messages and Bytes total the shard messages and their framed wire
	// volume across all computations.
	Messages int64 `json:"messages"`
	Bytes    int64 `json:"bytes"`
	// CommWall is the summed per-process communication wall-clock.
	CommWall time.Duration `json:"comm_wall"`
	// Retries, Timeouts and RecoveredRows total the fault-tolerance layer's
	// activity: shard-send retries after transient wire failures, receive
	// deadlines that expired, and kernel rows recomputed locally because a
	// peer's shard never arrived. All zero on a healthy wire.
	Retries       int64 `json:"retries"`
	Timeouts      int64 `json:"timeouts"`
	RecoveredRows int64 `json:"recovered_rows"`
}

// New validates the options and builds a framework.
func New(opts Options) (*Framework, error) {
	opts = opts.withDefaults()
	ansatz := circuit.Ansatz{
		Qubits:   opts.Features,
		Layers:   opts.Layers,
		Distance: opts.Distance,
		Gamma:    opts.Gamma,
	}
	if err := ansatz.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if opts.CalibFrac < 0 || opts.CalibFrac > 0.5 {
		return nil, fmt.Errorf("core: CalibFrac must lie in (0, 0.5] (0 disables calibration), got %v", opts.CalibFrac)
	}
	if opts.CalibFrac > 0 && (!(opts.Alpha > 0 && opts.Alpha < 1) || math.IsNaN(opts.Alpha)) {
		return nil, fmt.Errorf("core: Alpha must lie in (0,1), got %v", opts.Alpha)
	}
	cfg := mps.Config{}
	if opts.UseParallelBackend {
		cfg.Backend = backend.NewParallel(0)
	}
	// Resolve the effective budget once; cacheBudget < 0 means the full
	// memory-for-compute opt-out (no cache, no retained handles).
	cacheBudget := opts.CacheBytes
	if cacheBudget == 0 {
		cacheBudget = DefaultCacheBytes
	}
	var cache *statecache.Cache
	if cacheBudget > 0 {
		cache = statecache.New(cacheBudget)
	}
	return &Framework{
		opts:        opts,
		cacheBudget: cacheBudget,
		q:           &kernel.Quantum{Ansatz: ansatz, Config: cfg, Cache: cache, BatchBand: opts.BatchBand},
		comm:        CommStats{Transport: dist.TransportName(opts.Transport)},
	}, nil
}

// BandWidth returns the resolved banded state-materialisation width the
// kernel uses (Options.BatchBand, or the automatic core-count/cache-budget
// choice) — narrated in the train summary and served in /stats.
func (f *Framework) BandWidth() int { return f.q.BandWidth() }

// distOptions maps the framework's options onto one distributed computation,
// parented under sp for tracing (nil = untraced).
func (f *Framework) distOptions(sp *obs.Span) dist.Options {
	return dist.Options{
		Procs:      f.opts.Procs,
		Strategy:   f.opts.Strategy,
		Transport:  f.opts.Transport,
		Deadline:   f.opts.DistDeadline,
		MaxRetries: f.opts.DistRetries,
		Backoff:    f.opts.DistBackoff,
		Span:       sp,
	}
}

// recordComm folds one distributed computation's wire activity into the
// framework's cumulative counters.
func (f *Framework) recordComm(res *dist.Result) {
	f.commMu.Lock()
	defer f.commMu.Unlock()
	f.comm.Computations++
	f.comm.Messages += int64(res.TotalMessages())
	f.comm.Bytes += res.TotalBytes()
	f.comm.CommWall += res.TotalCommTime()
	f.comm.Retries += int64(res.TotalRetries())
	f.comm.Timeouts += int64(res.TotalTimeouts())
	f.comm.RecoveredRows += int64(res.TotalRecoveredRows())
	f.rowCosts.merge(SummarizeRowCosts(res.ObservedRowCosts))
}

// RowCostStats snapshots the cumulative per-row materialisation cost summary
// across every kernel computation this framework has run.
func (f *Framework) RowCostStats() RowCostSummary {
	f.commMu.Lock()
	defer f.commMu.Unlock()
	return f.rowCosts
}

// CommStats snapshots the framework's cumulative distributed-wire counters.
func (f *Framework) CommStats() CommStats {
	f.commMu.Lock()
	defer f.commMu.Unlock()
	return f.comm
}

// CacheStats snapshots the framework's state-cache counters; the zero Stats
// when caching is disabled.
func (f *Framework) CacheStats() statecache.Stats {
	return f.q.Cache.Stats()
}

// Options returns the (defaulted) options the framework was built with.
func (f *Framework) Options() Options {
	return f.opts
}

// Model bundles the trained SVM with the training inputs needed at
// inference time.
type Model struct {
	SVM    *svm.Model
	TrainX [][]float64
	TrainY []int
	// States are the retained training-stage MPS handles — the paper's
	// "store the MPS" option. While present, Predict computes the inference
	// kernel directly against them (zero training-set re-simulation, zero
	// simulated communication). Nil when Options.CacheBytes is negative
	// (the memory-bounded opt-out) or after deserialising a model; Predict
	// then falls back to re-simulating the training rows through the state
	// cache.
	States []*mps.MPS
	// Conformal is the split-conformal set predictor calibrated during Fit
	// when Options.CalibFrac > 0; nil on a score-only model. When present,
	// TrainX/TrainY/States hold the proper-training subset only (the SVM
	// never saw the calibration rows).
	Conformal *conformal.Predictor

	// opts and fingerprint capture the training context for persistence:
	// Save embeds them so LoadModel can rebuild an equivalent Framework and
	// verify the simulation context did not drift. Set by Fit; zero on a
	// hand-assembled Model (which Save therefore rejects).
	opts        Options
	fingerprint string
}

// Fingerprint returns the kernel simulation-context fingerprint the model
// was trained under (empty on a hand-assembled model). The serving registry
// exposes it per model so operators can tell which training context each
// resident model carries, and whether a hot reload actually swapped it.
func (m *Model) Fingerprint() string { return m.fingerprint }

// Calibrated reports whether the model carries a conformal predictor and can
// serve prediction sets (PredictSets); false on score-only models, including
// every model trained or persisted before calibration existed.
func (m *Model) Calibrated() bool { return m != nil && m.Conformal != nil }

// StatesBytes is the total payload of the retained training-state handles
// (0 when the model re-simulates training rows on demand).
func (m *Model) StatesBytes() int64 {
	var total int64
	for _, st := range m.States {
		total += st.MemoryBytes()
	}
	return total
}

// MaxBond is the largest bond dimension χ across the retained training
// states (0 when none are resident) — the size driver of both state-cache
// payload and per-row simulation cost, surfaced in the registry's model
// listing.
func (m *Model) MaxBond() int {
	max := 0
	for _, st := range m.States {
		if b := st.MaxBond(); b > max {
			max = b
		}
	}
	return max
}

// FitReport describes the training run.
type FitReport struct {
	GramWall    time.Duration
	SimWall     time.Duration
	InnerWall   time.Duration
	CommWall    time.Duration
	BytesSent   int64
	BestC       float64
	TrainAUC    float64
	SupportVecs int
	// CacheHits / CacheMisses count training-state requests served by the
	// state cache vs simulated during this Fit; CacheHitRate is their
	// ratio (1.0 on a fully warm refit, 0 with caching disabled).
	CacheHits    int
	CacheMisses  int
	CacheHitRate float64
	// Retries / Timeouts / RecoveredRows surface the fault-tolerance layer's
	// work during this Fit: shard-send retries, expired receive deadlines,
	// and Gram rows recomputed locally because a peer's shard never arrived.
	// All zero on a healthy run.
	Retries       int
	Timeouts      int
	RecoveredRows int
	// RowCosts summarises the measured per-row state-materialisation
	// wall-clock of this Fit's Gram computation (the EstimateRowCost
	// calibration ground truth).
	RowCosts RowCostSummary
	// Calibrated marks a Fit that held out a conformal calibration
	// partition (Options.CalibFrac > 0). The remaining fields below are
	// meaningful only when it is set.
	Calibrated bool
	// Alpha is the conformal miscoverage rate the model was calibrated at;
	// CalibRows the held-out partition size.
	Alpha     float64
	CalibRows int
	// CalibCoverage evaluates the calibrated sets on the calibration
	// partition itself — a sanity readout (coverage there is ≥ 1−α by
	// construction), narrated by the trainer alongside held-out coverage.
	CalibCoverage conformal.CoverageReport
	// SDT scores the confidence channel on the calibration partition as a
	// type-2 signal-detection task (does confidence discriminate correct
	// from incorrect point predictions?). SDTValid is false when the
	// partition was degenerate for SDT (e.g. the SVM got every calibration
	// row right), in which case SDT is the zero Report, not an error.
	SDT      sdt.Report
	SDTValid bool
}

// Fit computes the training Gram matrix with the configured distribution
// strategy and trains the SVM. Labels are ±1.
func (f *Framework) Fit(X [][]float64, y []int) (*Model, *FitReport, error) {
	return f.FitCtx(context.Background(), X, y)
}

// FitCtx is Fit under a context: when the context carries a span
// (obs.ContextWithSpan), the training run records its trace under it — a fit
// span with gram and svm_train phases, one child per distributed rank, and
// per-row simulation/cache spans below those.
func (f *Framework) FitCtx(ctx context.Context, X [][]float64, y []int) (*Model, *FitReport, error) {
	if len(X) != len(y) {
		return nil, nil, fmt.Errorf("core: %d rows for %d labels", len(X), len(y))
	}
	fitSp := obs.SpanFromContext(ctx).Child("fit")
	fitSp.SetAttr("rows", len(X))
	defer fitSp.End()
	gramSp := fitSp.Child("gram")
	gramSp.SetAttr("procs", f.opts.Procs)
	gramSp.SetAttr("strategy", f.opts.Strategy.String())
	gramSp.SetAttr("transport", dist.TransportName(f.opts.Transport))
	res, err := dist.ComputeGram(f.q, X, f.distOptions(gramSp))
	gramSp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("core: gram: %w", err)
	}
	f.recordComm(res)
	report := &FitReport{GramWall: res.Wall, BytesSent: res.TotalBytes()}
	report.SimWall, report.InnerWall, report.CommWall = res.MaxPhaseTimes()
	report.CacheHits = res.TotalCacheHits()
	report.CacheMisses = res.TotalStatesSimulated()
	report.Retries = res.TotalRetries()
	report.Timeouts = res.TotalTimeouts()
	report.RecoveredRows = res.TotalRecoveredRows()
	report.RowCosts = SummarizeRowCosts(res.ObservedRowCosts)
	if total := report.CacheHits + report.CacheMisses; total > 0 && f.q.Cache != nil {
		report.CacheHitRate = float64(report.CacheHits) / float64(total)
	}

	if f.opts.CalibFrac > 0 {
		return f.fitCalibrated(fitSp, res, X, y, report)
	}

	svmSp := fitSp.Child("svm_train")
	var model *svm.Model
	if f.opts.C > 0 {
		model, err = svm.Train(res.Gram, y, f.opts.C, 0)
		if err != nil {
			svmSp.End()
			return nil, nil, fmt.Errorf("core: svm: %w", err)
		}
		report.BestC = f.opts.C
	} else {
		// Select C on a held-out validation slice of the training set
		// (picking C by training AUC would always choose the most
		// overfitted model), then retrain on the full set.
		report.BestC, err = selectC(res.Gram, y)
		if err != nil {
			svmSp.End()
			return nil, nil, fmt.Errorf("core: C selection: %w", err)
		}
		model, err = svm.Train(res.Gram, y, report.BestC, 0)
		if err != nil {
			svmSp.End()
			return nil, nil, fmt.Errorf("core: svm: %w", err)
		}
	}
	if scores, err := model.DecisionBatch(res.Gram); err == nil {
		if auc, err := svm.AUC(scores, y); err == nil {
			report.TrainAUC = auc
		}
	}
	report.SupportVecs = len(model.SupportVectors())
	svmSp.SetAttr("best_c", report.BestC)
	svmSp.SetAttr("support_vecs", report.SupportVecs)
	svmSp.End()
	return &Model{
		SVM: model, TrainX: X, TrainY: y, States: f.retainStates(res.States),
		opts: f.opts, fingerprint: f.q.Fingerprint(),
	}, report, nil
}

// fitCalibrated finishes a Fit whose options enable conformal calibration:
// the Gram matrix is already computed over all rows; a deterministic
// calibration partition is carved out, the SVM is trained on the proper
// subset only, and the calibration rows' decision scores (rows of the full
// Gram restricted to proper columns — exactly the inference kernel those
// rows would see) build the model's conformal predictor.
func (f *Framework) fitCalibrated(fitSp *obs.Span, res *dist.Result, X [][]float64, y []int, report *FitReport) (*Model, *FitReport, error) {
	properIdx, calibIdx := calibSplit(len(y), f.opts.CalibFrac)
	if len(calibIdx) == 0 || !bothClasses(y, properIdx) || !bothClasses(y, calibIdx) {
		return nil, nil, fmt.Errorf("core: calibration split (%d proper / %d calibration rows) must keep both classes on both sides — more data or a different CalibFrac needed", len(properIdx), len(calibIdx))
	}
	subGram := submatrix(res.Gram, properIdx, properIdx)
	calibK := submatrix(res.Gram, calibIdx, properIdx)
	subY := subLabels(y, properIdx)
	calibY := subLabels(y, calibIdx)

	svmSp := fitSp.Child("svm_train")
	svmSp.SetAttr("proper_rows", len(properIdx))
	var err error
	if f.opts.C > 0 {
		report.BestC = f.opts.C
	} else if report.BestC, err = selectC(subGram, subY); err != nil {
		svmSp.End()
		return nil, nil, fmt.Errorf("core: C selection: %w", err)
	}
	model, err := svm.Train(subGram, subY, report.BestC, 0)
	if err != nil {
		svmSp.End()
		return nil, nil, fmt.Errorf("core: svm: %w", err)
	}
	if scores, err := model.DecisionBatch(subGram); err == nil {
		if auc, err := svm.AUC(scores, subY); err == nil {
			report.TrainAUC = auc
		}
	}
	report.SupportVecs = len(model.SupportVectors())
	svmSp.SetAttr("best_c", report.BestC)
	svmSp.SetAttr("support_vecs", report.SupportVecs)
	svmSp.End()

	calSp := fitSp.Child("calibrate")
	calSp.SetAttr("rows", len(calibIdx))
	calSp.SetAttr("alpha", f.opts.Alpha)
	defer calSp.End()
	calibScores, err := model.DecisionBatch(calibK)
	if err != nil {
		return nil, nil, fmt.Errorf("core: calibration scores: %w", err)
	}
	pred, err := conformal.Calibrate(calibScores, calibY, f.opts.Alpha)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	report.Calibrated = true
	report.Alpha = f.opts.Alpha
	report.CalibRows = pred.CalibRows()
	if cov, err := pred.Coverage(calibScores, calibY); err == nil {
		report.CalibCoverage = cov
	}
	prs := pred.PredictBatch(calibScores)
	labels := make([]int, len(prs))
	conf := make([]float64, len(prs))
	for i, pr := range prs {
		labels[i] = pr.Label
		conf[i] = pr.Confidence
	}
	if rep, err := sdt.FromPredictions(labels, conf, calibY); err == nil {
		report.SDT = rep
		report.SDTValid = true
	} else if !errors.Is(err, sdt.ErrDegenerate) {
		return nil, nil, fmt.Errorf("core: sdt: %w", err)
	}

	properX := make([][]float64, len(properIdx))
	for a, i := range properIdx {
		properX[a] = X[i]
	}
	var properStates []*mps.MPS
	if res.States != nil {
		properStates = make([]*mps.MPS, len(properIdx))
		for a, i := range properIdx {
			properStates[a] = res.States[i]
		}
	}
	return &Model{
		SVM: model, TrainX: properX, TrainY: subY,
		States: f.retainStates(properStates), Conformal: pred,
		opts: f.opts, fingerprint: f.q.Fingerprint(),
	}, report, nil
}

// calibSplit deterministically partitions row indices 0..n−1 for split
// conformal: every stride-th row (stride = max(2, round(1/frac))) joins the
// calibration partition, the rest form the proper-training subset. The
// partition is a fixed function of (n, frac) so a refit of the same data
// reproduces the same model.
func calibSplit(n int, frac float64) (proper, calib []int) {
	stride := int(math.Round(1 / frac))
	if stride < 2 {
		stride = 2
	}
	for i := 0; i < n; i++ {
		if i%stride == stride-1 {
			calib = append(calib, i)
		} else {
			proper = append(proper, i)
		}
	}
	return proper, calib
}

// submatrix extracts the rows × cols block of k into a fresh matrix.
func submatrix(k [][]float64, rows, cols []int) [][]float64 {
	out := make([][]float64, len(rows))
	for a, i := range rows {
		out[a] = make([]float64, len(cols))
		for b, j := range cols {
			out[a][b] = k[i][j]
		}
	}
	return out
}

func subLabels(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for a, i := range idx {
		out[a] = y[i]
	}
	return out
}

// retainStates decides whether the model keeps its training-state handles.
// CacheBytes is the user's memory bound, so it governs both resident sets:
// handles are dropped when caching is disabled (negative budget) or when
// their total payload would exceed the budget on its own — Predict then
// degrades gracefully to re-materialising training states through the
// (bounded) cache instead of pinning an unbounded O(N·m·χ²) set.
func (f *Framework) retainStates(states []*mps.MPS) []*mps.MPS {
	if f.cacheBudget < 0 {
		return nil
	}
	var bytes int64
	for _, st := range states {
		bytes += st.MemoryBytes()
	}
	if bytes > f.cacheBudget {
		return nil
	}
	return states
}

// selectC sweeps the paper's C grid on a deterministic 80/20 split of the
// training kernel (every 5th sample held out) and returns the value with
// the best validation AUC.
func selectC(gram [][]float64, y []int) (float64, error) {
	n := len(y)
	var fitIdx, valIdx []int
	for i := 0; i < n; i++ {
		if i%5 == 4 {
			valIdx = append(valIdx, i)
		} else {
			fitIdx = append(fitIdx, i)
		}
	}
	// Degenerate splits (single class on either side) fall back to the
	// middle of the grid.
	if !bothClasses(y, fitIdx) || !bothClasses(y, valIdx) {
		return 1.0, nil
	}
	subGram := make([][]float64, len(fitIdx))
	subY := make([]int, len(fitIdx))
	for a, i := range fitIdx {
		subY[a] = y[i]
		subGram[a] = make([]float64, len(fitIdx))
		for b, j := range fitIdx {
			subGram[a][b] = gram[i][j]
		}
	}
	valK := make([][]float64, len(valIdx))
	valY := make([]int, len(valIdx))
	for a, i := range valIdx {
		valY[a] = y[i]
		valK[a] = make([]float64, len(fitIdx))
		for b, j := range fitIdx {
			valK[a][b] = gram[i][j]
		}
	}
	_, _, bestC, err := svm.TrainBestC(subGram, subY, valK, valY, nil, 0)
	return bestC, err
}

func bothClasses(y []int, idx []int) bool {
	pos, neg := false, false
	for _, i := range idx {
		if y[i] == 1 {
			pos = true
		} else {
			neg = true
		}
	}
	return pos && neg
}

// Predict returns decision scores for new rows (positive ⇒ illicit class).
// When the model retains its training-state handles (the default after
// Fit), only the new rows are simulated; otherwise the training rows are
// re-materialised through the state cache.
func (f *Framework) Predict(m *Model, X [][]float64) ([]float64, error) {
	return f.PredictCtx(context.Background(), m, X)
}

// PredictCtx is Predict under a context: when the context carries a span,
// the inference records its trace under it — a cross_kernel span with one
// child per rank and per-row spans, then a decision span for the SVM scoring.
func (f *Framework) PredictCtx(ctx context.Context, m *Model, X [][]float64) ([]float64, error) {
	if m == nil || m.SVM == nil {
		return nil, fmt.Errorf("core: nil model")
	}
	sp := obs.SpanFromContext(ctx)
	kSp := sp.Child("cross_kernel")
	kSp.SetAttr("rows", len(X))
	var res *dist.Result
	var err error
	if m.States != nil {
		kSp.SetAttr("path", "retained-states")
		res, err = dist.ComputeCrossStates(f.q, X, m.States, f.distOptions(kSp))
	} else {
		kSp.SetAttr("path", "resimulate")
		res, err = dist.ComputeCross(f.q, X, m.TrainX, f.distOptions(kSp))
	}
	kSp.End()
	if err != nil {
		return nil, fmt.Errorf("core: inference kernel: %w", err)
	}
	f.recordComm(res)
	decSp := sp.Child("decision")
	scores, err := m.SVM.DecisionBatch(res.Gram)
	decSp.End()
	return scores, err
}

// ErrNotCalibrated is returned by PredictSets on a model without a conformal
// predictor — a score-only model (trained with CalibFrac = 0, or loaded from
// a pre-calibration model file).
var ErrNotCalibrated = errors.New("core: model is not calibrated — train with Options.CalibFrac > 0 for prediction sets")

// PredictSets returns calibrated conformal predictions (prediction set,
// per-class p-values, confidence, abstain/outlier flags) for new rows. The
// model must have been trained with calibration enabled (ErrNotCalibrated
// otherwise); the underlying kernel work is identical to Predict.
func (f *Framework) PredictSets(m *Model, X [][]float64) ([]conformal.Prediction, error) {
	return f.PredictSetsCtx(context.Background(), m, X)
}

// PredictSetsCtx is PredictSets under a context carrying an optional trace
// span.
func (f *Framework) PredictSetsCtx(ctx context.Context, m *Model, X [][]float64) ([]conformal.Prediction, error) {
	if !m.Calibrated() {
		return nil, ErrNotCalibrated
	}
	scores, err := f.PredictCtx(ctx, m, X)
	if err != nil {
		return nil, err
	}
	return m.Conformal.PredictBatch(scores), nil
}

// Evaluate scores the model on labelled data.
func (f *Framework) Evaluate(m *Model, X [][]float64, y []int) (svm.Metrics, error) {
	return f.EvaluateCtx(context.Background(), m, X, y)
}

// EvaluateCtx is Evaluate under a context carrying an optional trace span.
func (f *Framework) EvaluateCtx(ctx context.Context, m *Model, X [][]float64, y []int) (svm.Metrics, error) {
	scores, err := f.PredictCtx(ctx, m, X)
	if err != nil {
		return svm.Metrics{}, err
	}
	return svm.Evaluate(scores, y)
}
