package conformal

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// drawScores samples decision scores from the class-conditional Gaussians
// N(+sep, 1) for y=+1 and N(−sep, 1) for y=−1 — a synthetic stand-in for
// SVM decision values whose exchangeability between calibration and test
// draws is exact, so the coverage guarantee applies verbatim.
func drawScores(rng *rand.Rand, n int, sep float64) ([]float64, []int) {
	scores := make([]float64, n)
	y := make([]int, n)
	for i := range scores {
		if rng.Intn(2) == 0 {
			y[i] = +1
			scores[i] = rng.NormFloat64() + sep
		} else {
			y[i] = -1
			scores[i] = rng.NormFloat64() - sep
		}
	}
	return scores, y
}

// TestCoverageGuarantee is the headline property: across miscoverage rates
// and randomized draws, empirical coverage on held-out rows stays at or
// above 1−α−ε. The guarantee is an expectation over calibration and test
// draws; ε absorbs both the binomial test noise and the Beta-distributed
// calibration-conditional spread (sd ≈ √(α(1−α)/n_y)), which is why the
// calibration set here is sized so ε=0.03 has real margin.
func TestCoverageGuarantee(t *testing.T) {
	const (
		nCalib = 1000
		nTest  = 2000
		eps    = 0.03
	)
	for _, alpha := range []float64{0.05, 0.1, 0.2} {
		var meanCov float64
		const seeds = 5
		for seed := int64(1); seed <= seeds; seed++ {
			rng := rand.New(rand.NewSource(seed * 131))
			calibS, calibY := drawScores(rng, nCalib, 1.0)
			testS, testY := drawScores(rng, nTest, 1.0)
			p, err := Calibrate(calibS, calibY, alpha)
			if err != nil {
				t.Fatalf("alpha=%v seed=%d: %v", alpha, seed, err)
			}
			rep, err := p.Coverage(testS, testY)
			if err != nil {
				t.Fatalf("alpha=%v seed=%d: %v", alpha, seed, err)
			}
			meanCov += rep.Coverage / seeds
			if rep.Coverage < 1-alpha-eps {
				t.Errorf("alpha=%v seed=%d: coverage %.4f < %v", alpha, seed, rep.Coverage, 1-alpha-eps)
			}
			// The sets must also be doing work: with unit separation and
			// α ≥ 0.05 the average set cannot degenerate to always-both.
			if rep.AvgSetSize > 1.99 {
				t.Errorf("alpha=%v seed=%d: avg set size %.3f — predictor always abstains", alpha, seed, rep.AvgSetSize)
			}
		}
		// Averaged over draws the guarantee is tight from above: the mean
		// must sit at or above 1−α (within residual averaging noise).
		if meanCov < 1-alpha-0.01 {
			t.Errorf("alpha=%v: mean coverage %.4f across seeds below %v", alpha, meanCov, 1-alpha-0.01)
		}
	}
}

// TestPerClassCoverage checks the Mondrian construction's stronger,
// class-conditional guarantee on a class-imbalanced draw.
func TestPerClassCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const alpha, eps = 0.1, 0.04
	var calibS []float64
	var calibY []int
	// 3:1 imbalance, like the fraud dataset's licit majority.
	for i := 0; i < 400; i++ {
		if i%4 == 0 {
			calibY = append(calibY, +1)
			calibS = append(calibS, rng.NormFloat64()+1)
		} else {
			calibY = append(calibY, -1)
			calibS = append(calibS, rng.NormFloat64()-1)
		}
	}
	p, err := Calibrate(calibS, calibY, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []int{+1, -1} {
		covered, n := 0, 0
		for i := 0; i < 2000; i++ {
			s := rng.NormFloat64() + float64(class)
			if p.Predict(s).Covers(class) {
				covered++
			}
			n++
		}
		if cov := float64(covered) / float64(n); cov < 1-alpha-eps {
			t.Errorf("class %+d: conditional coverage %.4f < %v", class, cov, 1-alpha-eps)
		}
	}
}

// TestMetamorphicPermutation: calibration is order-free — any permutation
// of the calibration rows yields identical predictions.
func TestMetamorphicPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	calibS, calibY := drawScores(rng, 120, 1.0)
	testS, _ := drawScores(rng, 50, 1.0)
	base, err := Calibrate(calibS, calibY, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	perm := rng.Perm(len(calibS))
	permS := make([]float64, len(calibS))
	permY := make([]int, len(calibY))
	for i, j := range perm {
		permS[i] = calibS[j]
		permY[i] = calibY[j]
	}
	shuffled, err := Calibrate(permS, permY, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range testS {
		a, b := base.Predict(s), shuffled.Predict(s)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("permuting calibration order changed the prediction for score %v: %+v vs %+v", s, a, b)
		}
	}
}

// TestMetamorphicDuplication: duplicating one calibration row perturbs
// every p-value by less than 1/(n+1); away from the decision boundary the
// sets must not change. Seeds and draws are fixed, so the relation is
// checked deterministically.
func TestMetamorphicDuplication(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	calibS, calibY := drawScores(rng, 160, 1.0)
	testS, _ := drawScores(rng, 80, 1.0)
	base, err := Calibrate(calibS, calibY, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, dup := range []int{0, 17, 59} {
		dupS := append(append([]float64(nil), calibS...), calibS[dup])
		dupY := append(append([]int(nil), calibY...), calibY[dup])
		p2, err := Calibrate(dupS, dupY, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range testS {
			a, b := base.Predict(s), p2.Predict(s)
			if !reflect.DeepEqual(a.Set, b.Set) {
				// Only a p-value within 1/(n+1) of α may flip; anything else
				// is a real bug.
				slack := 1.0 / float64(len(calibY)+1)
				near := func(p float64) bool { return math.Abs(p-0.1) <= slack }
				if !near(a.PPos) && !near(a.PNeg) {
					t.Fatalf("dup row %d: set changed for score %v (%v vs %v) with p-values %v/%v far from alpha",
						dup, s, a.Set, b.Set, a.PPos, a.PNeg)
				}
			}
		}
	}
}

// TestMetamorphicRelabel: negating every score and flipping every label is
// a pure renaming of the classes — prediction sets must mirror exactly.
func TestMetamorphicRelabel(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	calibS, calibY := drawScores(rng, 140, 1.0)
	testS, _ := drawScores(rng, 60, 1.0)
	base, err := Calibrate(calibS, calibY, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	flipS := make([]float64, len(calibS))
	flipY := make([]int, len(calibY))
	for i := range calibS {
		flipS[i] = -calibS[i]
		flipY[i] = -calibY[i]
	}
	flipped, err := Calibrate(flipS, flipY, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range testS {
		a, b := base.Predict(s), flipped.Predict(-s)
		mirrored := make([]int, 0, len(a.Set))
		for i := len(a.Set) - 1; i >= 0; i-- {
			mirrored = append(mirrored, -a.Set[i])
		}
		if !reflect.DeepEqual(mirrored, append([]int{}, b.Set...)) && !(len(a.Set) == 0 && len(b.Set) == 0) {
			t.Fatalf("relabeling changed the set for score %v: %v vs mirrored %v", s, a.Set, b.Set)
		}
		if a.Abstain != b.Abstain || a.Outlier != b.Outlier {
			t.Fatalf("relabeling changed abstain/outlier for score %v", s)
		}
		if math.Abs(a.Confidence-b.Confidence) > 1e-15 {
			t.Fatalf("relabeling changed confidence for score %v: %v vs %v", s, a.Confidence, b.Confidence)
		}
	}
}

// TestPValueMonotone: p_{+1} must be nondecreasing and p_{−1} nonincreasing
// in the decision score — the nonconformity A(y,s) = −y·s is monotone.
func TestPValueMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	calibS, calibY := drawScores(rng, 100, 1.0)
	p, err := Calibrate(calibS, calibY, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	prevPos, prevNeg := -1.0, 2.0
	for s := -4.0; s <= 4.0; s += 0.05 {
		pp, pn := p.PValue(s, +1), p.PValue(s, -1)
		if pp < prevPos {
			t.Fatalf("p_pos decreased at score %v", s)
		}
		if pn > prevNeg {
			t.Fatalf("p_neg increased at score %v", s)
		}
		prevPos, prevNeg = pp, pn
	}
}

// TestThresholdConsistency: membership by p-value (> α) must agree with the
// quantile-threshold formulation for every class and score.
func TestThresholdConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	calibS, calibY := drawScores(rng, 90, 1.0)
	for _, alpha := range []float64{0.05, 0.1, 0.2, 0.4} {
		p, err := Calibrate(calibS, calibY, alpha)
		if err != nil {
			t.Fatal(err)
		}
		for s := -3.0; s <= 3.0; s += 0.1 {
			pr := p.Predict(s)
			for _, class := range []int{-1, +1} {
				a := -float64(class) * s
				byThreshold := a <= p.Threshold(class)
				if byThreshold != pr.Covers(class) {
					t.Fatalf("alpha=%v score=%v class=%+d: threshold rule %v, p-value rule %v",
						alpha, s, class, byThreshold, pr.Covers(class))
				}
			}
		}
	}
}

// TestTinyCalibrationConservative: when a class has too few calibration
// rows to pin the (1−α) quantile, its threshold is +Inf and the class is
// always included — coverage 1 through universal abstention, never silent
// under-coverage.
func TestTinyCalibrationConservative(t *testing.T) {
	p, err := Calibrate([]float64{2, 1.5, -1.8, -2.2}, []int{1, 1, -1, -1}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p.Threshold(+1), 1) || !math.IsInf(p.Threshold(-1), 1) {
		t.Fatalf("thresholds %v/%v, want +Inf with 2 calibration rows per class at alpha=0.1",
			p.Threshold(+1), p.Threshold(-1))
	}
	for _, s := range []float64{-5, -0.3, 0, 0.3, 5} {
		pr := p.Predict(s)
		if !pr.Abstain || len(pr.Set) != 2 {
			t.Fatalf("score %v: want universal abstention, got set %v", s, pr.Set)
		}
	}
}

// TestTiesDeterministic: exactly tied scores (common at χ extremes, where
// truncation saturates the kernel) must produce identical predictions on
// every call — ties count against membership conservatively, never
// randomly.
func TestTiesDeterministic(t *testing.T) {
	calibS := []float64{1, 1, 1, 1, -1, -1, -1, -1}
	calibY := []int{1, 1, 1, 1, -1, -1, -1, -1}
	p, err := Calibrate(calibS, calibY, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	first := p.Predict(1)
	for i := 0; i < 100; i++ {
		if got := p.Predict(1); !reflect.DeepEqual(got, first) {
			t.Fatalf("call %d: tied-score prediction changed: %+v vs %+v", i, got, first)
		}
	}
	// A calibration score exactly equal to the test nonconformity counts
	// toward the p-value (≥, not >): all four +1 calibration rows tie, so
	// p_pos = (4+1)/(4+1) = 1.
	if got := p.PValue(1, +1); got != 1 {
		t.Fatalf("tied p-value = %v, want 1 (ties count toward membership)", got)
	}
}

// TestCalibrateErrors: the degenerate inputs fail loudly and typed.
func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate([]float64{1, 2}, []int{1, 1}, 0.1); !errors.Is(err, ErrSingleClass) {
		t.Fatalf("single-class calibration: got %v, want ErrSingleClass", err)
	}
	if _, err := Calibrate([]float64{1, -1}, []int{1, -1}, 0); err == nil {
		t.Fatal("alpha=0 accepted")
	}
	if _, err := Calibrate([]float64{1, -1}, []int{1, -1}, 1); err == nil {
		t.Fatal("alpha=1 accepted")
	}
	if _, err := Calibrate([]float64{1, -1}, []int{1, -1}, math.NaN()); err == nil {
		t.Fatal("alpha=NaN accepted")
	}
	if _, err := Calibrate([]float64{1}, []int{1, -1}, 0.1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Calibrate([]float64{1, -1}, []int{1, 0}, 0.1); err == nil {
		t.Fatal("label 0 accepted")
	}
	if _, err := Calibrate(nil, nil, 0.1); err == nil {
		t.Fatal("empty calibration accepted")
	}
}

// TestValidateRehydration: a predictor round-tripped through persistence
// with unsorted scores is repaired, and corrupt ones are rejected.
func TestValidateRehydration(t *testing.T) {
	p := &Predictor{Alpha: 0.1, Pos: []float64{3, -1, 2}, Neg: []float64{0.5, -2}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(p.Pos) || !sort.Float64sAreSorted(p.Neg) {
		t.Fatal("Validate did not restore sort order")
	}
	bad := []*Predictor{
		nil,
		{Alpha: 0, Pos: []float64{1}, Neg: []float64{1}},
		{Alpha: 1.5, Pos: []float64{1}, Neg: []float64{1}},
		{Alpha: 0.1, Pos: []float64{1}},
		{Alpha: 0.1, Pos: []float64{math.NaN()}, Neg: []float64{1}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("bad predictor %d validated", i)
		}
	}
}

// TestConfidenceThresholdDuality: Confidence > 1−α exactly characterises
// the auto-decidable rows (singleton or empty set).
func TestConfidenceThresholdDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	calibS, calibY := drawScores(rng, 200, 1.0)
	p, err := Calibrate(calibS, calibY, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	testS, _ := drawScores(rng, 400, 1.0)
	for _, s := range testS {
		pr := p.Predict(s)
		auto := len(pr.Set) <= 1
		if byConf := pr.Confidence > 1-p.Alpha; byConf != auto {
			t.Fatalf("score %v: confidence %v vs set %v — duality broken", s, pr.Confidence, pr.Set)
		}
	}
}
