package sdt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestPerfectDiscrimination: confidence that perfectly separates correct
// from incorrect trials must score AUC 1 and a strongly positive d′.
func TestPerfectDiscrimination(t *testing.T) {
	conf := []float64{0.9, 0.95, 0.99, 0.97, 0.2, 0.1, 0.3, 0.25}
	correct := []bool{true, true, true, true, false, false, false, false}
	r, err := EvaluateConfidence(conf, correct)
	if err != nil {
		t.Fatal(err)
	}
	if r.AUC != 1 {
		t.Errorf("AUC = %v, want 1", r.AUC)
	}
	if r.DPrime <= 1 {
		t.Errorf("d' = %v, want strongly positive", r.DPrime)
	}
	if r.HitRate <= r.FalseAlarmRate {
		t.Errorf("hit rate %v not above false-alarm rate %v", r.HitRate, r.FalseAlarmRate)
	}
	if r.Accuracy != 0.5 || r.N != 8 || r.Correct != 4 {
		t.Errorf("bookkeeping: %+v", r)
	}
}

// TestChanceDiscrimination: confidence independent of correctness hovers at
// AUC ≈ 0.5 and d′ ≈ 0.
func TestChanceDiscrimination(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 4000
	conf := make([]float64, n)
	correct := make([]bool, n)
	for i := range conf {
		conf[i] = rng.Float64()
		correct[i] = rng.Intn(2) == 0
	}
	r, err := EvaluateConfidence(conf, correct)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.AUC-0.5) > 0.03 {
		t.Errorf("AUC = %v, want ≈0.5 on independent confidence", r.AUC)
	}
	if math.Abs(r.DPrime) > 0.15 {
		t.Errorf("d' = %v, want ≈0", r.DPrime)
	}
}

// TestFlatConfidence: a channel that says the same thing on every trial
// carries no information — d′ exactly 0, AUC exactly 0.5 (all midrank
// ties).
func TestFlatConfidence(t *testing.T) {
	conf := []float64{0.9, 0.9, 0.9, 0.9, 0.9, 0.9}
	correct := []bool{true, false, true, false, true, false}
	r, err := EvaluateConfidence(conf, correct)
	if err != nil {
		t.Fatal(err)
	}
	if r.DPrime != 0 {
		t.Errorf("d' = %v, want exactly 0 on a flat channel", r.DPrime)
	}
	if r.AUC != 0.5 {
		t.Errorf("AUC = %v, want exactly 0.5 on a flat channel", r.AUC)
	}
}

// TestDegenerateTyped: all-correct and all-incorrect trial sets return the
// typed error, never NaN metrics.
func TestDegenerateTyped(t *testing.T) {
	for _, allCorrect := range []bool{true, false} {
		correct := []bool{allCorrect, allCorrect, allCorrect}
		_, err := EvaluateConfidence([]float64{0.1, 0.5, 0.9}, correct)
		if !errors.Is(err, ErrDegenerate) {
			t.Fatalf("all-%v trials: got %v, want ErrDegenerate", allCorrect, err)
		}
	}
}

// TestInputValidation covers the malformed-input paths.
func TestInputValidation(t *testing.T) {
	if _, err := EvaluateConfidence([]float64{1}, []bool{true, false}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := EvaluateConfidence(nil, nil); err == nil {
		t.Fatal("empty trial set accepted")
	}
	if _, err := EvaluateConfidence([]float64{math.NaN(), 0.5}, []bool{true, false}); err == nil {
		t.Fatal("NaN confidence accepted")
	}
}

// TestRatesFiniteAtExtremes: observed hit/false-alarm rates of exactly 0 or
// 1 must stay finite after the log-linear correction, so d′ is always a
// number.
func TestRatesFiniteAtExtremes(t *testing.T) {
	conf := []float64{0.99, 0.98, 0.97, 0.01, 0.02, 0.03}
	correct := []bool{true, true, true, false, false, false}
	r, err := EvaluateConfidence(conf, correct)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{"d'": r.DPrime, "hit": r.HitRate, "fa": r.FalseAlarmRate} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v, want finite", name, v)
		}
	}
	if r.HitRate >= 1 || r.FalseAlarmRate <= 0 {
		t.Errorf("corrected rates %v/%v must stay strictly inside (0,1)", r.HitRate, r.FalseAlarmRate)
	}
}

// TestFromPredictions: the label/truth convenience wrapper matches the
// boolean form.
func TestFromPredictions(t *testing.T) {
	labels := []int{1, -1, 1, -1}
	y := []int{1, -1, -1, 1}
	conf := []float64{0.9, 0.8, 0.3, 0.2}
	want, err := EvaluateConfidence(conf, []bool{true, true, false, false})
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromPredictions(labels, conf, y)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("FromPredictions = %+v, want %+v", got, want)
	}
	if _, err := FromPredictions([]int{1}, conf, y); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
