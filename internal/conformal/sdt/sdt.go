// Package sdt evaluates a confidence channel with signal-detection-theory
// metrics: does high confidence actually discriminate correct predictions
// from incorrect ones?
//
// Calibration-style metrics (ECE and friends) ask whether stated confidence
// matches accuracy on average; they are blind to a channel that reports the
// same confidence everywhere. Following Cacioli's "Do LLMs Know What They
// Know?" framing, this package instead treats correctness as the signal in
// a type-2 detection task: each prediction is a trial, "correct" trials are
// signal, "incorrect" trials are noise, and the confidence score is the
// observer's evidence. Discrimination is then
//
//   - HitRate / FalseAlarmRate: P(confidence > criterion | correct) vs
//     P(confidence > criterion | incorrect) at a single criterion (the
//     median confidence), log-linear corrected so 0/1 rates stay finite;
//   - DPrime: z(HR) − z(FAR), the classic equal-variance Gaussian
//     sensitivity index. With confidence as the type-2 evidence axis this is
//     the single-criterion analogue of meta-d′: 0 means confidence carries
//     no information about correctness, ≳1 is solid discrimination;
//   - AUC: the criterion-free rank statistic P(conf_correct > conf_incorrect)
//     (ties count half) — the full type-2 ROC area, 0.5 = chance.
//
// The decomposition matters operationally: a confidence channel can be
// recalibrated after the fact, but only if it discriminates in the first
// place. These metrics gate the latter.
package sdt

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrDegenerate is returned when every prediction is correct or every
// prediction is incorrect — a one-class trial set on which discrimination
// is undefined (there is nothing to tell apart).
var ErrDegenerate = errors.New("sdt: all predictions share one correctness class, discrimination undefined")

// Report bundles the signal-detection metrics of one confidence channel.
type Report struct {
	// N is the number of trials; Correct how many were signal (correct
	// predictions). Accuracy is their ratio.
	N        int     `json:"n"`
	Correct  int     `json:"correct"`
	Accuracy float64 `json:"accuracy"`
	// Criterion is the confidence threshold the single-criterion rates are
	// computed at (the median confidence).
	Criterion float64 `json:"criterion"`
	// HitRate is P(conf > criterion | correct); FalseAlarmRate is
	// P(conf > criterion | incorrect). Both log-linear corrected.
	HitRate        float64 `json:"hit_rate"`
	FalseAlarmRate float64 `json:"false_alarm_rate"`
	// DPrime is z(HitRate) − z(FalseAlarmRate).
	DPrime float64 `json:"d_prime"`
	// AUC is the criterion-free type-2 ROC area: the probability that a
	// random correct prediction carries higher confidence than a random
	// incorrect one (ties half).
	AUC float64 `json:"auc"`
}

// zScore is the probit (inverse standard-normal CDF).
func zScore(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// EvaluateConfidence computes the SDT report for a confidence channel:
// conf[i] is the stated confidence of prediction i, correct[i] whether the
// prediction was right. Returns ErrDegenerate when correctness is
// single-class.
func EvaluateConfidence(conf []float64, correct []bool) (Report, error) {
	if len(conf) != len(correct) {
		return Report{}, fmt.Errorf("sdt: %d confidences for %d outcomes", len(conf), len(correct))
	}
	if len(conf) == 0 {
		return Report{}, fmt.Errorf("sdt: empty trial set")
	}
	for _, c := range conf {
		if math.IsNaN(c) {
			return Report{}, fmt.Errorf("sdt: NaN confidence")
		}
	}
	r := Report{N: len(conf)}
	for _, ok := range correct {
		if ok {
			r.Correct++
		}
	}
	r.Accuracy = float64(r.Correct) / float64(r.N)
	nCorrect, nIncorrect := r.Correct, r.N-r.Correct
	if nCorrect == 0 || nIncorrect == 0 {
		return Report{}, fmt.Errorf("%w (%d correct, %d incorrect)", ErrDegenerate, nCorrect, nIncorrect)
	}

	// Single criterion: the median confidence. "Yes, I was right" ⟺ conf
	// strictly above it, so an all-equal channel yields HR = FAR = 0 after
	// correction and d′ = 0 — no information, as it should.
	sorted := append([]float64(nil), conf...)
	sort.Float64s(sorted)
	r.Criterion = sorted[(len(sorted)-1)/2]
	var hits, fas int
	for i, c := range conf {
		if c > r.Criterion {
			if correct[i] {
				hits++
			} else {
				fas++
			}
		}
	}
	// Log-linear correction (add half a trial to each cell) keeps z finite
	// at observed rates of exactly 0 or 1.
	r.HitRate = (float64(hits) + 0.5) / (float64(nCorrect) + 1)
	r.FalseAlarmRate = (float64(fas) + 0.5) / (float64(nIncorrect) + 1)
	r.DPrime = zScore(r.HitRate) - zScore(r.FalseAlarmRate)

	// Criterion-free AUC via midranks (the Mann–Whitney statistic on the
	// correct-vs-incorrect partition).
	idx := make([]int, len(conf))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return conf[idx[a]] < conf[idx[b]] })
	ranks := make([]float64, len(conf))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && conf[idx[j+1]] == conf[idx[i]] {
			j++
		}
		mid := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	var rCorrect float64
	for i, ok := range correct {
		if ok {
			rCorrect += ranks[i]
		}
	}
	u := rCorrect - float64(nCorrect)*float64(nCorrect+1)/2
	r.AUC = u / (float64(nCorrect) * float64(nIncorrect))
	return r, nil
}

// FromPredictions is the conformal-channel convenience: predicted labels
// and stated confidences against true labels.
func FromPredictions(labels []int, conf []float64, y []int) (Report, error) {
	if len(labels) != len(y) || len(conf) != len(y) {
		return Report{}, fmt.Errorf("sdt: %d labels / %d confidences for %d truths", len(labels), len(conf), len(y))
	}
	correct := make([]bool, len(y))
	for i := range y {
		correct[i] = labels[i] == y[i]
	}
	return EvaluateConfidence(conf, correct)
}
