// Package conformal turns raw SVM decision scores into calibrated
// prediction sets with a finite-sample coverage guarantee — the "predictions
// that know what they know" layer over the quantum-kernel classifier.
//
// The construction is Mondrian (label-conditional) split conformal
// prediction, in the spirit of Park et al.'s few-shot set predictors: a
// calibration partition is held out of the training set, the classifier's
// decision scores on it are converted to nonconformity scores, and at
// inference time each candidate label y ∈ {−1,+1} receives a p-value
//
//	p_y(s) = (#{calibration rows of class y with nonconformity ≥ A(y,s)} + 1)
//	         / (n_y + 1)
//
// where A(y,s) = −y·s is the nonconformity of decision score s under label
// y (a large positive score is very conforming for +1 and very
// nonconforming for −1). The prediction set at miscoverage rate α is
//
//	Γ(s) = {y : p_y(s) > α}
//
// which can be empty ({} — the row conforms to neither class: an outlier),
// a singleton ({+1} or {−1} — a confident, auto-decidable prediction), or
// both classes ({−1,+1} — ambiguous: the abstention signal routed to human
// review in the fraud scenario).
//
// Guarantee: when calibration and test rows are exchangeable, each class's
// p-value is super-uniform, so P(y ∈ Γ | true label y) ≥ 1−α per class and
// hence marginally — with no assumptions on the classifier, the kernel, or
// the data distribution. The guarantee holds in expectation over draws; the
// empirical coverage of one finite test set fluctuates around it (binomial
// noise), which is why the test-suite asserts coverage ≥ 1−α−ε.
//
// Ties are handled conservatively and deterministically: a calibration
// nonconformity exactly equal to the test row's counts against it (≥, not
// >), so repeated runs produce identical sets and coverage can only err
// high. No randomized smoothing is used.
package conformal

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// DefaultAlpha is the miscoverage rate used when a caller enables
// calibration without choosing one: 90% target coverage.
const DefaultAlpha = 0.1

// ErrSingleClass is returned by Calibrate when the calibration partition
// does not contain both classes — Mondrian calibration needs at least one
// row per class to bound that class's nonconformity.
var ErrSingleClass = errors.New("conformal: calibration set does not contain both classes")

// Predictor is a calibrated split-conformal set predictor for a binary
// (±1) decision-score classifier. Fields are exported for persistence; use
// Calibrate to construct one, and treat a constructed Predictor as
// immutable (Predict is safe for concurrent use).
type Predictor struct {
	// Alpha is the miscoverage rate α: sets cover the true label with
	// probability ≥ 1−α.
	Alpha float64
	// Pos and Neg are the ascending per-class calibration nonconformity
	// scores: Pos holds −s for calibration rows with true label +1, Neg
	// holds +s for rows with true label −1.
	Pos []float64
	Neg []float64
}

// Calibrate builds a predictor from held-out calibration decision scores
// and their true ±1 labels. alpha must lie in (0,1); both classes must be
// present (ErrSingleClass otherwise).
func Calibrate(scores []float64, y []int, alpha float64) (*Predictor, error) {
	if len(scores) != len(y) {
		return nil, fmt.Errorf("conformal: %d scores for %d labels", len(scores), len(y))
	}
	if len(y) == 0 {
		return nil, fmt.Errorf("conformal: empty calibration set")
	}
	if !(alpha > 0 && alpha < 1) || math.IsNaN(alpha) {
		return nil, fmt.Errorf("conformal: alpha must be in (0,1), got %v", alpha)
	}
	p := &Predictor{Alpha: alpha}
	for i, v := range y {
		switch v {
		case +1:
			p.Pos = append(p.Pos, -scores[i])
		case -1:
			p.Neg = append(p.Neg, +scores[i])
		default:
			return nil, fmt.Errorf("conformal: labels must be ±1, got %d", v)
		}
	}
	if len(p.Pos) == 0 || len(p.Neg) == 0 {
		return nil, fmt.Errorf("%w (%d pos, %d neg)", ErrSingleClass, len(p.Pos), len(p.Neg))
	}
	sort.Float64s(p.Pos)
	sort.Float64s(p.Neg)
	return p, nil
}

// Validate checks a predictor rehydrated from persistence: alpha in range,
// both classes represented, scores sorted (they are re-sorted rather than
// rejected — sort order is an internal invariant, not part of the codec).
func (p *Predictor) Validate() error {
	if p == nil {
		return fmt.Errorf("conformal: nil predictor")
	}
	if !(p.Alpha > 0 && p.Alpha < 1) || math.IsNaN(p.Alpha) {
		return fmt.Errorf("conformal: alpha must be in (0,1), got %v", p.Alpha)
	}
	if len(p.Pos) == 0 || len(p.Neg) == 0 {
		return fmt.Errorf("%w (%d pos, %d neg)", ErrSingleClass, len(p.Pos), len(p.Neg))
	}
	for _, s := range append(append([]float64(nil), p.Pos...), p.Neg...) {
		if math.IsNaN(s) {
			return fmt.Errorf("conformal: NaN calibration score")
		}
	}
	if !sort.Float64sAreSorted(p.Pos) {
		sort.Float64s(p.Pos)
	}
	if !sort.Float64sAreSorted(p.Neg) {
		sort.Float64s(p.Neg)
	}
	return nil
}

// CalibRows is the total number of calibration rows the predictor was built
// from.
func (p *Predictor) CalibRows() int { return len(p.Pos) + len(p.Neg) }

// Threshold returns the per-class nonconformity acceptance threshold for
// class y (±1): the ⌈(1−α)(n_y+1)⌉-th smallest calibration nonconformity.
// A score whose nonconformity under y is ≤ the threshold has p_y > α and
// joins the set. When the calibration class is too small to pin the
// quantile (⌈(1−α)(n_y+1)⌉ > n_y), the threshold is +Inf — the class is
// always included, which is the conservative (never under-covering) answer.
func (p *Predictor) Threshold(y int) float64 {
	scores := p.Pos
	if y == -1 {
		scores = p.Neg
	}
	n := len(scores)
	k := int(math.Ceil((1 - p.Alpha) * float64(n+1)))
	if k > n {
		return math.Inf(1)
	}
	if k < 1 {
		k = 1
	}
	return scores[k-1]
}

// PValue returns the conformal p-value of candidate label y (±1) for
// decision score s: the (smoothed-by-one) fraction of calibration rows of
// class y at least as nonconforming as s would be under y.
func (p *Predictor) PValue(s float64, y int) float64 {
	a := -s // nonconformity under +1
	scores := p.Pos
	if y == -1 {
		a = s
		scores = p.Neg
	}
	// Count of calibration nonconformities ≥ a (ties count against us —
	// deterministic and conservative).
	idx := sort.SearchFloat64s(scores, a)
	count := len(scores) - idx
	return float64(count+1) / float64(len(scores)+1)
}

// Prediction is the calibrated answer for one row.
type Prediction struct {
	// Set is the prediction set Γ ⊆ {−1,+1} in ascending order: nil/empty
	// (outlier), {−1}, {+1}, or {−1,+1} (abstain).
	Set []int `json:"set"`
	// PPos and PNeg are the per-class conformal p-values.
	PPos float64 `json:"p_pos"`
	PNeg float64 `json:"p_neg"`
	// Label is the point prediction: the class with the larger p-value
	// (ties resolve to the sign of the decision score, +1 at exactly zero —
	// the same convention as svm.Evaluate).
	Label int `json:"label"`
	// Confidence is 1 minus the smaller p-value: how firmly the row rejects
	// the runner-up class. 1−α is the auto-decide criterion: Confidence
	// > 1−α ⟺ the set is a singleton or empty.
	Confidence float64 `json:"confidence"`
	// Credibility is the larger p-value: how well the row conforms to its
	// best class at all. Low credibility with high confidence marks an
	// outlier (empty set).
	Credibility float64 `json:"credibility"`
	// Abstain marks an ambiguous row (both classes in the set); Outlier an
	// empty set (the row conforms to neither class).
	Abstain bool `json:"abstain"`
	Outlier bool `json:"outlier"`
}

// Covers reports whether the prediction set contains the label.
func (pr Prediction) Covers(y int) bool {
	for _, v := range pr.Set {
		if v == y {
			return true
		}
	}
	return false
}

// Predict computes the calibrated prediction for one decision score.
func (p *Predictor) Predict(s float64) Prediction {
	pPos := p.PValue(s, +1)
	pNeg := p.PValue(s, -1)
	pr := Prediction{PPos: pPos, PNeg: pNeg}
	if pNeg > p.Alpha {
		pr.Set = append(pr.Set, -1)
	}
	if pPos > p.Alpha {
		pr.Set = append(pr.Set, +1)
	}
	switch {
	case pPos > pNeg:
		pr.Label = +1
	case pNeg > pPos:
		pr.Label = -1
	case s >= 0:
		pr.Label = +1
	default:
		pr.Label = -1
	}
	lo, hi := pPos, pNeg
	if lo > hi {
		lo, hi = hi, lo
	}
	pr.Confidence = 1 - lo
	pr.Credibility = hi
	pr.Abstain = len(pr.Set) == 2
	pr.Outlier = len(pr.Set) == 0
	return pr
}

// PredictBatch maps Predict over a score slice.
func (p *Predictor) PredictBatch(scores []float64) []Prediction {
	out := make([]Prediction, len(scores))
	for i, s := range scores {
		out[i] = p.Predict(s)
	}
	return out
}

// CoverageReport summarises calibrated predictions against true labels.
type CoverageReport struct {
	// N is the number of rows evaluated.
	N int `json:"n"`
	// Coverage is the fraction of rows whose true label is in the set —
	// the quantity guaranteed ≥ 1−α in expectation.
	Coverage float64 `json:"coverage"`
	// AvgSetSize is the mean |Γ| (1.0 = perfectly decisive, 2.0 = always
	// abstaining); the efficiency axis of a set predictor.
	AvgSetSize float64 `json:"avg_set_size"`
	// AbstainRate and OutlierRate are the fractions of two-class and empty
	// sets.
	AbstainRate float64 `json:"abstain_rate"`
	OutlierRate float64 `json:"outlier_rate"`
}

// Coverage evaluates prediction sets for the given decision scores against
// true ±1 labels.
func (p *Predictor) Coverage(scores []float64, y []int) (CoverageReport, error) {
	if len(scores) != len(y) {
		return CoverageReport{}, fmt.Errorf("conformal: %d scores for %d labels", len(scores), len(y))
	}
	if len(y) == 0 {
		return CoverageReport{}, fmt.Errorf("conformal: empty evaluation set")
	}
	var covered, sizes, abstain, outlier int
	for i, s := range scores {
		pr := p.Predict(s)
		if pr.Covers(y[i]) {
			covered++
		}
		sizes += len(pr.Set)
		if pr.Abstain {
			abstain++
		}
		if pr.Outlier {
			outlier++
		}
	}
	n := float64(len(y))
	return CoverageReport{
		N:           len(y),
		Coverage:    float64(covered) / n,
		AvgSetSize:  float64(sizes) / n,
		AbstainRate: float64(abstain) / n,
		OutlierRate: float64(outlier) / n,
	}, nil
}
