GO      ?= go
DATE    := $(shell date +%Y-%m-%d)
BENCH_OUT := BENCH_$(DATE).json

# The 1-iteration smoke subset: the distributed-Gram benchmarks this repo's
# perf trajectory tracks, plus one simulator and one solver bench.
SMOKE_BENCHES := BenchmarkFig8RuntimeBreakdown|BenchmarkAblationDistStrategies|BenchmarkFig5SimulationSerial|BenchmarkSVMTrain

.PHONY: all build vet fmt-check test race bench-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Everything CI enforces, runnable locally in one shot.
ci: build vet fmt-check test race

# bench-smoke runs each tracked benchmark for exactly one iteration and
# writes the go-test JSON event stream (machine-readable: one JSON object
# per line, benchmark metrics inside the Output events) to BENCH_<date>.json.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(SMOKE_BENCHES)' -benchtime 1x -json . > $(BENCH_OUT)
	@grep -q 'ns/op' $(BENCH_OUT) || { echo "no benchmark results captured" >&2; exit 1; }
	@echo "wrote $(BENCH_OUT)"

clean:
	rm -f BENCH_*.json
