GO      ?= go
DATE    := $(shell date +%Y-%m-%d)
BENCH_OUT := BENCH_$(DATE).json

# The 1-iteration smoke subset: the distributed-Gram benchmarks this repo's
# perf trajectory tracks, plus one simulator bench, one solver bench, the
# cache/overlap-engine benches added with the state cache, the micro-batched
# serving path (ns/op per coalesced row), the transport ablation
# (chan vs. sim vs. tcp-loopback wires under the same round-robin Gram), the
# fused gate-engine bench (serial + parallel backends), the banded
# materialisation engine (one batch GEMM per gate position per band), and the
# blocked tridiagonal eigensolver behind SVDTrunc.
SMOKE_BENCHES := BenchmarkFig8RuntimeBreakdown|BenchmarkAblationDistStrategies|BenchmarkFig5SimulationSerial|BenchmarkSVMTrain|BenchmarkFitPredictRoundTrip|BenchmarkGramFromStates|BenchmarkServeBatch|BenchmarkGramTransport|BenchmarkApplyCircuit|BenchmarkBatchedStates|BenchmarkBlockedEig

# The committed perf baseline: the newest BENCH_<date>.json tracked by git.
# bench-check reads the blob from HEAD (not the working tree), so a fresh
# `make bench-smoke` that overwrites the same-day baseline file on disk
# cannot make the gate compare a run against itself.
BASELINE := $(shell git ls-files 'BENCH_*.json' | sort | tail -1)

.PHONY: all build vet fmt-check test race bench-smoke bench-check serve-smoke load-smoke chaos-smoke obs-smoke calib-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Everything CI enforces, runnable locally in one shot.
ci: build vet fmt-check test race

# bench-smoke runs each tracked benchmark for exactly one iteration and
# writes the go-test JSON event stream (machine-readable: one JSON object
# per line, benchmark metrics inside the Output events) to BENCH_<date>.json.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(SMOKE_BENCHES)' -benchtime 1x -json . > $(BENCH_OUT)
	@grep -q 'ns/op' $(BENCH_OUT) || { echo "no benchmark results captured" >&2; exit 1; }
	@echo "wrote $(BENCH_OUT)"

# bench-check is the CI regression gate: rerun the tracked benches (3
# iterations to tame smoke-level noise) into an uncommitted scratch file and
# fail on >20% ns/op regressions against the committed baseline. Benches
# under 1ms are reported but not gated — at smoke iteration counts their
# noise exceeds any threshold worth enforcing.
bench-check:
	@test -n "$(BASELINE)" || { echo "bench-check: no committed BENCH_*.json baseline — run 'make bench-smoke' and commit the BENCH_<date>.json it writes" >&2; exit 1; }
	@git cat-file -e HEAD:$(BASELINE) 2>/dev/null || { echo "bench-check: $(BASELINE) is tracked but not committed on HEAD — commit it before gating" >&2; exit 1; }
	git show HEAD:$(BASELINE) > bench_baseline.json
	$(GO) test -run '^$$' -bench '$(SMOKE_BENCHES)' -benchtime 3x -json . > bench_current.json
	$(GO) run ./cmd/benchdiff -baseline bench_baseline.json -current bench_current.json -threshold 0.20

# serve-smoke is the end-to-end serving check: train a tiny model, start
# `qkernel serve` on a free port, POST one prediction and assert HTTP 200
# with scores — the whole persistence + HTTP + batching stack in one shot.
serve-smoke:
	sh scripts/serve_smoke.sh

# load-smoke is the p99-gated load harness: train two tiny models, serve them
# from one registry, drive 200 concurrent loadgen clients across both (with a
# hot reload fired mid-run), and fail on any 5xx or p99 over the budget.
# Tunables: LOAD_CLIENTS, LOAD_DURATION, LOAD_P99_BUDGET_MS (env).
load-smoke:
	sh scripts/load_smoke.sh

# chaos-smoke is the end-to-end fault-tolerance check: train over the
# chaos-wrapped loopback-TCP wire with a mid-run rank crash plus 30% message
# drops and assert the saved model is byte-identical to a clean run's, with a
# nonzero locally-recovered row count proving the faults actually fired.
chaos-smoke:
	sh scripts/chaos_smoke.sh

# calib-smoke is the end-to-end calibrated-prediction check: train with
# conformal calibration at α=0.1, assert the narrated held-out coverage lands
# in [0.85, 1.0], serve the model, assert POST /predict carries prediction
# sets and /metrics a well-formed confidence histogram (via cmd/obscheck).
calib-smoke:
	sh scripts/calib_smoke.sh

# obs-smoke is the end-to-end observability check: train with -trace and
# validate the Chrome trace-event JSON via cmd/obscheck, then serve with
# tracing + pprof, fire a request, and assert its X-Request-Id fetches a
# span tree from /debug/trace/{id}, /metrics carries well-formed latency
# histogram families, and the pprof side port returns a CPU profile.
obs-smoke:
	sh scripts/obs_smoke.sh

clean:
	rm -f BENCH_*.json bench_current.json bench_baseline.json
