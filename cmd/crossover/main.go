// Command crossover reproduces artifact A3: Fig. 5 (serial/parallel runtime
// crossover as qubit interaction distance grows) and Table I (bond
// dimensions and memory per MPS).
//
// Usage:
//
//	crossover [-qubits 32] [-layers 2] [-gamma 1.0] [-dmax 6] [-circuits 8] [-csv out.csv]
//
// Paper-scale settings: -qubits 100 -dmax 12.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	qubits := flag.Int("qubits", 32, "number of qubits m")
	layers := flag.Int("layers", 2, "ansatz layers r")
	gamma := flag.Float64("gamma", 1.0, "kernel bandwidth γ")
	dmax := flag.Int("dmax", 6, "largest interaction distance")
	circuits := flag.Int("circuits", 8, "circuits per distance (paper: 8)")
	workers := flag.Int("workers", 0, "parallel-backend workers (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "data seed")
	csvPath := flag.String("csv", "", "optional CSV output path")
	flag.Parse()

	var distances []int
	for d := 1; d <= *dmax; d++ {
		distances = append(distances, d)
	}
	res, err := experiments.RunFig5TableI(experiments.Fig5Params{
		Qubits:    *qubits,
		Layers:    *layers,
		Gamma:     *gamma,
		Distances: distances,
		Circuits:  *circuits,
		Workers:   *workers,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crossover:", err)
		os.Exit(1)
	}

	fmt.Println("Fig. 5 — runtime scaling vs interaction distance")
	fmt.Println(res.Fig5Table().Render())
	fmt.Println("Table I — bond dimension and memory per MPS")
	fmt.Println(res.TableI().Render())
	if res.CrossoverDistance >= 0 {
		fmt.Printf("crossover: parallel backend wins from d=%d (χ ≈ %.0f)\n",
			res.CrossoverDistance, res.CrossoverChi)
	} else {
		fmt.Println("crossover: not reached in this sweep (serial faster throughout)")
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.Fig5Table().CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "crossover: writing csv:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
