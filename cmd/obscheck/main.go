// Command obscheck validates observability artifacts in CI — the two
// machine-readable outputs the obs layer produces:
//
//	obscheck -trace trace.json [-require 'fit,gram,rank 0,row']
//	    Parses a Chrome trace-event JSON file (the `qkernel train -trace`
//	    output), requires at least one event, checks every "X" event carries
//	    a positive duration, and asserts each comma-separated required span
//	    name appears.
//
//	obscheck -metrics metrics.txt [-require-family 'qkernel_serve_request_seconds,...']
//	    Parses a Prometheus text exposition (a /metrics scrape), checks the
//	    line grammar, and for each required family asserts it is declared as
//	    TYPE histogram with, per labelset, monotonically non-decreasing
//	    cumulative buckets whose le="+Inf" count equals the _count sample.
//
// Exit status 0 means every check passed; failures are listed on stderr.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	require := flag.String("require", "", "comma-separated span names the trace must contain")
	metricsPath := flag.String("metrics", "", "Prometheus text exposition file to validate")
	requireFamily := flag.String("require-family", "", "comma-separated histogram families the exposition must contain")
	flag.Parse()

	if (*tracePath == "") == (*metricsPath == "") {
		fmt.Fprintln(os.Stderr, "obscheck: exactly one of -trace or -metrics is required")
		os.Exit(2)
	}

	var errs []string
	if *tracePath != "" {
		errs = checkTrace(*tracePath, splitList(*require))
	} else {
		errs = checkMetrics(*metricsPath, splitList(*requireFamily))
	}
	if len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "obscheck:", e)
		}
		os.Exit(1)
	}
	fmt.Println("obscheck: ok")
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// checkTrace validates one Chrome trace-event file.
func checkTrace(path string, required []string) []string {
	blob, err := os.ReadFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var tr obs.ChromeTrace
	if err := json.Unmarshal(blob, &tr); err != nil {
		return []string{fmt.Sprintf("%s: not valid trace-event JSON: %v", path, err)}
	}
	var errs []string
	if len(tr.TraceEvents) == 0 {
		errs = append(errs, path+": traceEvents is empty")
	}
	names := map[string]bool{}
	for i, ev := range tr.TraceEvents {
		names[ev.Name] = true
		switch ev.Phase {
		case "X":
			if ev.Dur <= 0 {
				errs = append(errs, fmt.Sprintf("%s: event %d (%q): complete event with non-positive dur %g", path, i, ev.Name, ev.Dur))
			}
		case "M", "i", "B", "E":
		default:
			errs = append(errs, fmt.Sprintf("%s: event %d (%q): unexpected phase %q", path, i, ev.Name, ev.Phase))
		}
	}
	for _, want := range required {
		if !names[want] {
			errs = append(errs, fmt.Sprintf("%s: required span %q not present", path, want))
		}
	}
	return errs
}

// sample is one parsed exposition line: metric name, raw label block
// (sorted, le stripped for histogram grouping), le value, and the number.
type sample struct {
	name  string
	le    string
	hasLE bool
	value float64
}

// checkMetrics validates one Prometheus text exposition.
func checkMetrics(path string, requiredFamilies []string) []string {
	f, err := os.Open(path)
	if err != nil {
		return []string{err.Error()}
	}
	defer f.Close()

	var errs []string
	types := map[string]string{} // family → TYPE
	// samples[metricName][labelsWithoutLE] → list of samples
	samples := map[string]map[string][]sample{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		s, labels, perr := parseSample(line)
		if perr != "" {
			errs = append(errs, fmt.Sprintf("%s:%d: %s", path, lineNo, perr))
			continue
		}
		if samples[s.name] == nil {
			samples[s.name] = map[string][]sample{}
		}
		samples[s.name][labels] = append(samples[s.name][labels], s)
	}
	if err := sc.Err(); err != nil {
		return append(errs, err.Error())
	}

	for _, fam := range requiredFamilies {
		if types[fam] != "histogram" {
			errs = append(errs, fmt.Sprintf("%s: family %q not declared as TYPE histogram (got %q)", path, fam, types[fam]))
			continue
		}
		buckets := samples[fam+"_bucket"]
		counts := samples[fam+"_count"]
		if len(buckets) == 0 {
			errs = append(errs, fmt.Sprintf("%s: family %q has no _bucket samples", path, fam))
			continue
		}
		for labels, bs := range buckets {
			var inf *sample
			prev := -1.0
			for i := range bs {
				if !bs[i].hasLE {
					errs = append(errs, fmt.Sprintf("%s: %s_bucket{%s} sample missing le label", path, fam, labels))
					continue
				}
				if bs[i].value < prev {
					errs = append(errs, fmt.Sprintf("%s: %s_bucket{%s}: cumulative counts decrease at le=%q", path, fam, labels, bs[i].le))
				}
				prev = bs[i].value
				if bs[i].le == "+Inf" {
					inf = &bs[i]
				}
			}
			if inf == nil {
				errs = append(errs, fmt.Sprintf("%s: %s_bucket{%s} has no le=\"+Inf\" bucket", path, fam, labels))
				continue
			}
			cs, ok := counts[labels]
			if !ok || len(cs) == 0 {
				errs = append(errs, fmt.Sprintf("%s: %s{%s} has buckets but no _count sample", path, fam, labels))
				continue
			}
			if cs[0].value != inf.value {
				errs = append(errs, fmt.Sprintf("%s: %s{%s}: le=\"+Inf\" bucket %g != _count %g", path, fam, labels, inf.value, cs[0].value))
			}
		}
	}
	return errs
}

// parseSample splits one exposition sample line into its metric name, its
// label block normalised for histogram grouping (sorted, le removed), and
// the parsed sample. A non-empty third return is the parse error.
func parseSample(line string) (sample, string, string) {
	var s sample
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return s, "", "malformed sample line (no metric name): " + line
	}
	s.name = line[:nameEnd]
	rest := line[nameEnd:]
	var labelPairs []string
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, "", "unterminated label block: " + line
		}
		block := rest[1:close]
		rest = rest[close+1:]
		for _, pair := range splitLabels(block) {
			k, v, found := strings.Cut(pair, "=")
			if !found {
				return s, "", "malformed label " + pair
			}
			uq, err := strconv.Unquote(v)
			if err != nil {
				return s, "", "label value not a quoted string: " + pair
			}
			if k == "le" {
				s.le, s.hasLE = uq, true
				continue
			}
			labelPairs = append(labelPairs, k+"="+uq)
		}
	}
	valStr := strings.TrimSpace(rest)
	// A timestamp may follow the value; the value is the first field.
	if i := strings.IndexByte(valStr, ' '); i >= 0 {
		valStr = valStr[:i]
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, "", "sample value not a float: " + line
	}
	s.value = v
	sort.Strings(labelPairs)
	return s, strings.Join(labelPairs, ","), ""
}

// splitLabels splits a label block on commas outside quoted values.
func splitLabels(block string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(block); i++ {
		switch block[i] {
		case '"':
			if i == 0 || block[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				if p := strings.TrimSpace(block[start:i]); p != "" {
					out = append(out, p)
				}
				start = i + 1
			}
		}
	}
	if p := strings.TrimSpace(block[start:]); p != "" {
		out = append(out, p)
	}
	return out
}
