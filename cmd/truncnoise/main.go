// Command truncnoise runs the truncation-noise study the paper's conclusion
// calls for as future work: sweep the SVD truncation budget from the
// noiseless 1e-16 to aggressive values and measure the bond-dimension
// saving, the kernel-entry deviation, the fidelity lower bound of equation
// (8), and the downstream classification AUC.
//
// Usage:
//
//	truncnoise [-features 16] [-size 80] [-d 3] [-gamma 0.8] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	features := flag.Int("features", 16, "feature count (qubits)")
	size := flag.Int("size", 80, "balanced data size")
	layers := flag.Int("layers", 2, "ansatz layers r")
	distance := flag.Int("d", 3, "interaction distance")
	gamma := flag.Float64("gamma", 0.8, "kernel bandwidth γ")
	budgetList := flag.String("budgets", "1e-16,1e-12,1e-8,1e-6,1e-4,1e-2", "comma-separated truncation budgets")
	seed := flag.Int64("seed", 1, "data seed")
	csvPath := flag.String("csv", "", "optional CSV output path")
	flag.Parse()

	var budgets []float64
	for _, p := range strings.Split(*budgetList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "truncnoise: bad budget:", p)
			os.Exit(1)
		}
		budgets = append(budgets, v)
	}

	res, err := experiments.RunTruncationNoise(experiments.NoiseParams{
		Features: *features,
		DataSize: *size,
		Layers:   *layers,
		Distance: *distance,
		Gamma:    *gamma,
		Budgets:  budgets,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "truncnoise:", err)
		os.Exit(1)
	}

	fmt.Println("Truncation-noise study (paper section IV future work)")
	fmt.Println(res.Table().Render())
	fmt.Printf("bond-dimension reduction across the sweep: %.2f×\n", res.ChiReduction())
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.Table().CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "truncnoise: writing csv:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
