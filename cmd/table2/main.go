// Command table2 reproduces artifact A6 (Table II): SVM classification
// performance of the quantum kernel across interaction distances and kernel
// bandwidths, against the Gaussian-kernel baseline with α = 1/(m·var(X)).
//
// Usage:
//
//	table2 [-features 50] [-size 240] [-runs 3] [-csv out.csv]
//
// Paper-scale settings: -size 400 -runs 6.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	features := flag.Int("features", 50, "feature count")
	size := flag.Int("size", 240, "balanced data size")
	layers := flag.Int("layers", 2, "ansatz layers r")
	dList := flag.String("d", "1,2,4,6", "comma-separated interaction distances")
	gList := flag.String("gammas", "0.1,0.5,1.0", "comma-separated γ values")
	runs := flag.Int("runs", 3, "seeded runs to average (paper: 6)")
	seed := flag.Int64("seed", 1, "base data seed")
	csvPath := flag.String("csv", "", "optional CSV output path")
	flag.Parse()

	var ds []int
	for _, p := range strings.Split(*dList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, "table2: bad distance:", p)
			os.Exit(1)
		}
		ds = append(ds, v)
	}
	var gs []float64
	for _, p := range strings.Split(*gList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table2: bad gamma:", p)
			os.Exit(1)
		}
		gs = append(gs, v)
	}

	res, err := experiments.RunTableII(experiments.TableIIParams{
		Features:  *features,
		DataSize:  *size,
		Layers:    *layers,
		Distances: ds,
		Gammas:    gs,
		Runs:      *runs,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "table2:", err)
		os.Exit(1)
	}

	fmt.Println("Table II — SVM performance, quantum kernel grid vs Gaussian baseline")
	fmt.Println("(the highest-AUC row is marked with *)")
	fmt.Println(res.Table().Render())
	if res.QuantumBeatsGaussian() {
		fmt.Println("observation: at least one quantum configuration beats the Gaussian baseline (paper C2.2)")
	} else {
		fmt.Println("observation: no quantum configuration beat the Gaussian baseline in this run")
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.Table().CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "table2: writing csv:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
