// Command qmlscaling reproduces artifact A5 (Figs. 9 and 10): train- and
// test-set AUC of the quantum-kernel SVM as feature dimension and data-set
// size grow — the paper's headline evidence that quantum kernel model
// performance improves at scale.
//
// Usage:
//
//	qmlscaling [-sizes 100,300,800] [-features 15,50,100,165] [-gamma 0.1] [-csv out.csv]
//
// Paper-scale settings: -sizes 300,1500,6400.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	sizes := flag.String("sizes", "100,300,800", "comma-separated balanced sample sizes")
	features := flag.String("features", "15,50,100,165", "comma-separated feature counts")
	layers := flag.Int("layers", 2, "ansatz layers r")
	distance := flag.Int("d", 1, "interaction distance")
	gamma := flag.Float64("gamma", 0.1, "kernel bandwidth γ")
	seed := flag.Int64("seed", 1, "data seed")
	csvPath := flag.String("csv", "", "optional CSV output path")
	flag.Parse()

	sz, err := parseInts(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qmlscaling:", err)
		os.Exit(1)
	}
	ft, err := parseInts(*features)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qmlscaling:", err)
		os.Exit(1)
	}
	res, err := experiments.RunFig9Fig10(experiments.QMLParams{
		SampleSizes: sz,
		FeatureGrid: ft,
		Layers:      *layers,
		Distance:    *distance,
		Gamma:       *gamma,
		Seed:        *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qmlscaling:", err)
		os.Exit(1)
	}

	fmt.Println("Figs. 9–10 — AUC vs features per data size (train | test)")
	fmt.Println(res.Table().Render())
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.Table().CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "qmlscaling: writing csv:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
