// Command qubitscaling reproduces artifact A1 (Fig. 7): MPS simulation time
// for circuits with a varying number of qubits (features), one series per
// kernel bandwidth γ, demonstrating the manageable scaling in m and the
// γ-dependence of entanglement (γ=0.5 slowest).
//
// Usage:
//
//	qubitscaling [-qubits 15,40,65,90,115,140,165] [-d 4] [-layers 2] [-samples 4] [-csv out.csv]
//
// Paper-scale settings: -d 6 -samples 8.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	qubitList := flag.String("qubits", "15,40,65,90,115,140,165", "comma-separated qubit counts")
	layers := flag.Int("layers", 2, "ansatz layers r")
	distance := flag.Int("d", 4, "interaction distance")
	gammaList := flag.String("gammas", "0.1,0.5,1.0", "comma-separated γ values")
	samples := flag.Int("samples", 4, "samples per point (paper: 8)")
	seed := flag.Int64("seed", 1, "data seed")
	csvPath := flag.String("csv", "", "optional CSV output path")
	flag.Parse()

	var grid []int
	for _, p := range strings.Split(*qubitList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, "qubitscaling: bad qubit count:", p)
			os.Exit(1)
		}
		grid = append(grid, v)
	}
	var gammas []float64
	for _, p := range strings.Split(*gammaList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qubitscaling: bad gamma:", p)
			os.Exit(1)
		}
		gammas = append(gammas, v)
	}

	res, err := experiments.RunFig7(experiments.Fig7Params{
		QubitGrid: grid,
		Layers:    *layers,
		Distance:  *distance,
		Gammas:    gammas,
		Samples:   *samples,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qubitscaling:", err)
		os.Exit(1)
	}

	fmt.Println("Fig. 7 — simulation time vs qubit count")
	fmt.Println(res.Table().Render())
	chart := &experiments.Chart{Title: "simulation seconds vs qubits (log y)", LogY: true}
	for _, g := range gammas {
		var xs, ys []float64
		for _, pt := range res.Points {
			if pt.Gamma == g {
				xs = append(xs, float64(pt.Qubits))
				ys = append(ys, pt.AvgSimSecs)
			}
		}
		if err := chart.AddSeries(fmt.Sprintf("γ=%.1f", g), xs, ys); err != nil {
			fmt.Fprintln(os.Stderr, "qubitscaling:", err)
			os.Exit(1)
		}
	}
	fmt.Println(chart.Render())
	fmt.Printf("slowest γ (strongest entanglement): %.1f\n", res.SlowestGamma())
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.Table().CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "qubitscaling: writing csv:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
