// Command memevol reproduces artifact A2 (Fig. 6): the memory required to
// store the MPS throughout circuit simulation, for two interaction-distance
// families, showing the exponential growth punctuated by SVD-truncation
// drops.
//
// Usage:
//
//	memevol [-qubits 60] [-layers 2] [-gamma 1.0] [-d 4,6] [-samples 8] [-csv out.csv]
//
// Paper-scale settings: -qubits 100 -d 6,12.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	qubits := flag.Int("qubits", 60, "number of qubits m")
	layers := flag.Int("layers", 2, "ansatz layers r")
	gamma := flag.Float64("gamma", 1.0, "kernel bandwidth γ")
	dList := flag.String("d", "4,6", "comma-separated interaction distances")
	samples := flag.Int("samples", 8, "circuits per family")
	seed := flag.Int64("seed", 1, "data seed")
	csvPath := flag.String("csv", "", "optional CSV output path")
	flag.Parse()

	distances, err := parseIntList(*dList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memevol:", err)
		os.Exit(1)
	}
	res, err := experiments.RunFig6(experiments.Fig6Params{
		Qubits:    *qubits,
		Layers:    *layers,
		Gamma:     *gamma,
		Distances: distances,
		Samples:   *samples,
		Seed:      *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "memevol:", err)
		os.Exit(1)
	}

	fmt.Println("Fig. 6 — MPS memory during simulation (MiB)")
	fmt.Println(res.Table().Render())
	chart := &experiments.Chart{Title: "mean MPS memory (MiB) vs % of gates applied (log y)", LogY: true}
	for _, series := range res.Series {
		if err := chart.AddSeries(fmt.Sprintf("d=%d", series.Distance), series.ProgressPct, series.MeanMiB); err != nil {
			fmt.Fprintln(os.Stderr, "memevol:", err)
			os.Exit(1)
		}
	}
	fmt.Println(chart.Render())
	for _, s := range res.Series {
		fmt.Printf("d=%d: peak %.3f MiB, %d truncation-induced bond drops observed\n",
			s.Distance, s.PeakMiB, s.Truncations)
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.Table().CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "memevol: writing csv:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
