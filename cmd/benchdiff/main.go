// Command benchdiff compares two benchmark result files produced by
// `go test -bench -json` (the BENCH_<date>.json format this repository's
// perf trajectory tracks) and fails when a tracked benchmark regressed
// beyond a threshold — the CI gate of the ROADMAP's "flag regressions >20%"
// item.
//
// Usage:
//
//	benchdiff -baseline BENCH_2026-07-29.json -current bench_current.json
//	          [-threshold 0.20] [-match 'Fig8|DistStrategies'] [-min-ns 1e6]
//
// Benchmarks present on only one side are reported but do not fail the run
// (new benches appear, old ones are retired) — unless nothing at all
// remains to gate, which exits 2: a fully renamed tracked set or an
// over-narrow -match must force a baseline refresh rather than pass
// silently. Sub-millisecond benches are skipped by default: at 1–3 bench
// iterations their scheduler noise swamps any real signal.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineHint is appended to baseline-side failures: the usual cause is a
// repo (or branch) that has never committed a bench baseline, and the fix is
// actionable rather than a confusing parse error.
const baselineHint = "no committed BENCH_*.json baseline on HEAD? Run `make bench-smoke` and commit the BENCH_<date>.json it writes, then re-run"

// event is the subset of the test2json stream benchdiff consumes.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// result holds the per-benchmark metrics the gate tracks: ns/op always,
// allocs/op when the benchmark reports allocations (b.ReportAllocs).
type result struct {
	ns        float64
	allocs    float64
	hasAllocs bool
}

// parseResult extracts the ns/op (and, when present, allocs/op) figures from
// a benchmark result line like
// "BenchmarkFoo-8   \t       3\t  40321317 ns/op\t  18819712 B/op\t  3185 allocs/op".
func parseResult(line string) (result, bool) {
	var r result
	ok := false
	fields := strings.Fields(line)
	for i, f := range fields {
		if i == 0 {
			continue
		}
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		switch f {
		case "ns/op":
			r.ns, ok = v, true
		case "allocs/op":
			r.allocs, r.hasAllocs = v, true
		}
	}
	return r, ok
}

// load parses a go-test JSON event stream into benchmark → metrics. The
// result line may be split across several Output events, so lines are
// reassembled per benchmark before scanning.
func load(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	partial := map[string]string{}
	out := map[string]result{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("%s: malformed event %q: %w", path, line, err)
		}
		if ev.Action != "output" || ev.Test == "" {
			continue
		}
		partial[ev.Test] += ev.Output
		for {
			text := partial[ev.Test]
			nl := strings.IndexByte(text, '\n')
			if nl < 0 {
				break
			}
			full, rest := text[:nl], text[nl+1:]
			partial[ev.Test] = rest
			if r, ok := parseResult(full); ok {
				out[ev.Test] = r
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and arguments, returning the exit code
// (0 ok, 1 regression, 2 usage/baseline problems) so the exit paths are
// testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	baselinePath := fs.String("baseline", "", "committed baseline BENCH_<date>.json")
	currentPath := fs.String("current", "", "freshly generated bench result file")
	threshold := fs.Float64("threshold", 0.20, "fail when current/baseline − 1 exceeds this fraction (ns/op and allocs/op)")
	match := fs.String("match", ".*", "only gate benchmarks whose name matches this regexp")
	minNs := fs.Float64("min-ns", 1e6, "skip benchmarks whose baseline is below this many ns/op (too noisy at smoke iteration counts)")
	minAllocs := fs.Float64("min-allocs", 100, "skip the allocs/op gate when the baseline is below this many allocs/op (a ±1-alloc wobble on a tiny count is noise, not a leak)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *baselinePath == "" || *currentPath == "" {
		fmt.Fprintln(stderr, "benchdiff: -baseline and -current are required —", baselineHint)
		return 2
	}
	re, err := regexp.Compile(*match)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff: bad -match:", err)
		return 2
	}

	// Distinguish "the baseline never existed" from a malformed file before
	// parsing: a missing or empty baseline is the expected state of a repo
	// that has not committed one yet, and deserves guidance, not a parse
	// error.
	if fi, err := os.Stat(*baselinePath); err != nil {
		fmt.Fprintf(stderr, "benchdiff: baseline %s does not exist — %s\n", *baselinePath, baselineHint)
		return 2
	} else if fi.Size() == 0 {
		fmt.Fprintf(stderr, "benchdiff: baseline %s is empty — %s\n", *baselinePath, baselineHint)
		return 2
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v — %s\n", err, baselineHint)
		return 2
	}
	current, err := load(*currentPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	regressed := 0
	compared := 0
	for _, name := range names {
		base := baseline[name]
		cur, ok := current[name]
		if !ok {
			fmt.Fprintf(stdout, "  ?  %-55s retired (absent from current run)\n", name)
			continue
		}
		if !re.MatchString(name) {
			continue
		}
		if base.ns < *minNs {
			fmt.Fprintf(stdout, "  ~  %-55s %12.0f → %12.0f ns/op (below -min-ns, not gated)\n", name, base.ns, cur.ns)
			continue
		}
		compared++
		delta := cur.ns/base.ns - 1
		nsReg := delta > *threshold

		// The allocs/op gate protects the zero-realloc engine work: a run
		// that stays within the ns/op threshold by spending cycles elsewhere
		// but reintroduces per-op heap traffic still fails.
		allocInfo := ""
		allocReg := false
		if base.hasAllocs && cur.hasAllocs {
			adelta := 0.0
			if base.allocs > 0 {
				adelta = cur.allocs/base.allocs - 1
			} else if cur.allocs > 0 {
				adelta = math.Inf(1)
			}
			gated := base.allocs >= *minAllocs
			allocReg = gated && adelta > *threshold
			allocInfo = fmt.Sprintf("   %8.0f → %8.0f allocs/op  %+6.1f%%", base.allocs, cur.allocs, 100*adelta)
			if !gated {
				allocInfo += " (below -min-allocs, not gated)"
			}
		}

		mark := "ok "
		if nsReg || allocReg {
			mark = "REG"
			regressed++
		}
		fmt.Fprintf(stdout, "  %s %-55s %12.0f → %12.0f ns/op  %+6.1f%%%s\n", mark, name, base.ns, cur.ns, 100*delta, allocInfo)
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Fprintf(stdout, "  +  %-55s new bench (no baseline)\n", name)
		}
	}

	if compared == 0 {
		fmt.Fprintln(stderr, "benchdiff: no benchmarks left to gate — check -match, or refresh the committed baseline if the tracked set was renamed")
		return 2
	}
	if regressed > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d of %d gated benchmarks regressed >%.0f%% (ns/op or allocs/op) vs %s\n",
			regressed, compared, 100**threshold, *baselinePath)
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: %d gated benchmarks within %.0f%% of %s\n", compared, 100**threshold, *baselinePath)
	return 0
}
