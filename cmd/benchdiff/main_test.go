package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchEvent fabricates one go-test JSON output event carrying a benchmark
// result line.
func benchEvent(name string, ns float64) string {
	return fmt.Sprintf(`{"Action":"output","Test":"%s","Output":"%s-8   \t       3\t  %.0f ns/op\n"}`+"\n", name, name, ns)
}

func writeBench(t *testing.T, dir, name string, benches map[string]float64) string {
	t.Helper()
	var sb strings.Builder
	for b, ns := range benches {
		sb.WriteString(benchEvent(b, ns))
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestMissingBaselineHasClearMessage(t *testing.T) {
	dir := t.TempDir()
	current := writeBench(t, dir, "current.json", map[string]float64{"BenchmarkFoo": 2e6})

	code, _, stderr := runDiff(t, "-baseline", filepath.Join(dir, "BENCH_none.json"), "-current", current)
	if code != 2 {
		t.Fatalf("missing baseline exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "does not exist") || !strings.Contains(stderr, "bench-smoke") {
		t.Fatalf("missing-baseline message not actionable: %q", stderr)
	}
}

func TestEmptyBaselineHasClearMessage(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "BENCH_empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	current := writeBench(t, dir, "current.json", map[string]float64{"BenchmarkFoo": 2e6})

	code, _, stderr := runDiff(t, "-baseline", empty, "-current", current)
	if code != 2 {
		t.Fatalf("empty baseline exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "is empty") || !strings.Contains(stderr, "bench-smoke") {
		t.Fatalf("empty-baseline message not actionable: %q", stderr)
	}
}

func TestMissingFlagsHint(t *testing.T) {
	code, _, stderr := runDiff(t)
	if code != 2 || !strings.Contains(stderr, "-baseline and -current are required") {
		t.Fatalf("flagless run: code %d, stderr %q", code, stderr)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runDiff(t, "-h")
	if code != 0 {
		t.Fatalf("-h exited %d, want 0", code)
	}
	if !strings.Contains(stderr, "-baseline") {
		t.Fatalf("-h printed no usage: %q", stderr)
	}
}

func TestRegressionGate(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBench(t, dir, "BENCH_base.json", map[string]float64{
		"BenchmarkFast": 2e6, "BenchmarkSlow": 2e6,
	})

	// Within threshold → 0.
	ok := writeBench(t, dir, "ok.json", map[string]float64{
		"BenchmarkFast": 2.1e6, "BenchmarkSlow": 2.2e6,
	})
	if code, out, _ := runDiff(t, "-baseline", baseline, "-current", ok); code != 0 || !strings.Contains(out, "within") {
		t.Fatalf("healthy run: code %d, out %q", code, out)
	}

	// One regression beyond 20% → 1.
	reg := writeBench(t, dir, "reg.json", map[string]float64{
		"BenchmarkFast": 2e6, "BenchmarkSlow": 3e6,
	})
	code, out, stderr := runDiff(t, "-baseline", baseline, "-current", reg)
	if code != 1 {
		t.Fatalf("regressed run exited %d, want 1", code)
	}
	if !strings.Contains(out, "REG") || !strings.Contains(stderr, "regressed") {
		t.Fatalf("regression not reported: out %q stderr %q", out, stderr)
	}
}

// TestNothingLeftToGate: an over-narrow -match must fail loudly (exit 2), not
// pass an empty comparison.
func TestNothingLeftToGate(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBench(t, dir, "BENCH_base.json", map[string]float64{"BenchmarkFoo": 2e6})
	current := writeBench(t, dir, "current.json", map[string]float64{"BenchmarkFoo": 2e6})

	code, _, stderr := runDiff(t, "-baseline", baseline, "-current", current, "-match", "NoSuchBench")
	if code != 2 || !strings.Contains(stderr, "no benchmarks left to gate") {
		t.Fatalf("empty gate: code %d, stderr %q", code, stderr)
	}
}

// benchEventAllocs fabricates an output event whose result line carries both
// ns/op and allocs/op, as benchmarks with b.ReportAllocs emit.
func benchEventAllocs(name string, ns, allocs float64) string {
	return fmt.Sprintf(`{"Action":"output","Test":"%s","Output":"%s-8   \t       3\t  %.0f ns/op\t  1024 B/op\t  %.0f allocs/op\n"}`+"\n", name, name, ns, allocs)
}

func writeBenchAllocs(t *testing.T, dir, name string, benches map[string][2]float64) string {
	t.Helper()
	var sb strings.Builder
	for b, m := range benches {
		sb.WriteString(benchEventAllocs(b, m[0], m[1]))
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAllocsGate is the table-driven coverage of the allocs/op gate: a bench
// that holds its ns/op but regresses allocations beyond the threshold fails,
// small baselines are exempt via -min-allocs, improvements and ns-only
// results pass untouched.
func TestAllocsGate(t *testing.T) {
	cases := []struct {
		name      string
		base, cur [2]float64 // {ns/op, allocs/op}
		extraArgs []string
		wantCode  int
		wantInOut string
		wantInErr string
	}{
		{
			name: "allocs regression beyond threshold fails even with flat ns",
			base: [2]float64{2e6, 3000}, cur: [2]float64{2e6, 4000},
			wantCode: 1, wantInOut: "REG", wantInErr: "allocs/op",
		},
		{
			name: "allocs within threshold passes",
			base: [2]float64{2e6, 3000}, cur: [2]float64{2e6, 3500},
			wantCode: 0, wantInOut: "allocs/op",
		},
		{
			name: "allocs improvement passes",
			base: [2]float64{2e6, 3000}, cur: [2]float64{1.8e6, 40},
			wantCode: 0, wantInOut: "ok ",
		},
		{
			name: "tiny baselines are exempt below -min-allocs",
			base: [2]float64{2e6, 5}, cur: [2]float64{2e6, 9},
			wantCode: 0, wantInOut: "below -min-allocs, not gated",
		},
		{
			name: "-min-allocs 0 gates even tiny counts",
			base: [2]float64{2e6, 5}, cur: [2]float64{2e6, 9},
			extraArgs: []string{"-min-allocs", "0"},
			wantCode:  1, wantInOut: "REG",
		},
		{
			name: "zero-alloc baseline regressing to nonzero fails when gated",
			base: [2]float64{2e6, 0}, cur: [2]float64{2e6, 7},
			extraArgs: []string{"-min-allocs", "0"},
			wantCode:  1, wantInOut: "REG",
		},
		{
			name: "both metrics regressing reports one failing bench",
			base: [2]float64{2e6, 3000}, cur: [2]float64{3e6, 9000},
			wantCode: 1, wantInOut: "REG", wantInErr: "1 of 1 gated benchmarks regressed",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			baseline := writeBenchAllocs(t, dir, "BENCH_base.json", map[string][2]float64{"BenchmarkX": tc.base})
			current := writeBenchAllocs(t, dir, "current.json", map[string][2]float64{"BenchmarkX": tc.cur})
			args := append([]string{"-baseline", baseline, "-current", current}, tc.extraArgs...)
			code, out, stderr := runDiff(t, args...)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, tc.wantCode, out, stderr)
			}
			if tc.wantInOut != "" && !strings.Contains(out, tc.wantInOut) {
				t.Fatalf("stdout missing %q:\n%s", tc.wantInOut, out)
			}
			if tc.wantInErr != "" && !strings.Contains(stderr, tc.wantInErr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantInErr, stderr)
			}
		})
	}
}

// TestMixedAllocReporting: an ns-only baseline entry against an
// alloc-reporting current (or vice versa) gates ns/op only — the alloc gate
// needs both sides.
func TestMixedAllocReporting(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBench(t, dir, "BENCH_base.json", map[string]float64{"BenchmarkX": 2e6})
	current := writeBenchAllocs(t, dir, "current.json", map[string][2]float64{"BenchmarkX": [2]float64{2e6, 9000}})
	if code, out, _ := runDiff(t, "-baseline", baseline, "-current", current); code != 0 || strings.Contains(out, "allocs/op") {
		t.Fatalf("ns-only baseline must not alloc-gate: code %d out %q", code, out)
	}
}
