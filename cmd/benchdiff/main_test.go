package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchEvent fabricates one go-test JSON output event carrying a benchmark
// result line.
func benchEvent(name string, ns float64) string {
	return fmt.Sprintf(`{"Action":"output","Test":"%s","Output":"%s-8   \t       3\t  %.0f ns/op\n"}`+"\n", name, name, ns)
}

func writeBench(t *testing.T, dir, name string, benches map[string]float64) string {
	t.Helper()
	var sb strings.Builder
	for b, ns := range benches {
		sb.WriteString(benchEvent(b, ns))
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runDiff(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestMissingBaselineHasClearMessage(t *testing.T) {
	dir := t.TempDir()
	current := writeBench(t, dir, "current.json", map[string]float64{"BenchmarkFoo": 2e6})

	code, _, stderr := runDiff(t, "-baseline", filepath.Join(dir, "BENCH_none.json"), "-current", current)
	if code != 2 {
		t.Fatalf("missing baseline exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "does not exist") || !strings.Contains(stderr, "bench-smoke") {
		t.Fatalf("missing-baseline message not actionable: %q", stderr)
	}
}

func TestEmptyBaselineHasClearMessage(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "BENCH_empty.json")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	current := writeBench(t, dir, "current.json", map[string]float64{"BenchmarkFoo": 2e6})

	code, _, stderr := runDiff(t, "-baseline", empty, "-current", current)
	if code != 2 {
		t.Fatalf("empty baseline exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "is empty") || !strings.Contains(stderr, "bench-smoke") {
		t.Fatalf("empty-baseline message not actionable: %q", stderr)
	}
}

func TestMissingFlagsHint(t *testing.T) {
	code, _, stderr := runDiff(t)
	if code != 2 || !strings.Contains(stderr, "-baseline and -current are required") {
		t.Fatalf("flagless run: code %d, stderr %q", code, stderr)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, stderr := runDiff(t, "-h")
	if code != 0 {
		t.Fatalf("-h exited %d, want 0", code)
	}
	if !strings.Contains(stderr, "-baseline") {
		t.Fatalf("-h printed no usage: %q", stderr)
	}
}

func TestRegressionGate(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBench(t, dir, "BENCH_base.json", map[string]float64{
		"BenchmarkFast": 2e6, "BenchmarkSlow": 2e6,
	})

	// Within threshold → 0.
	ok := writeBench(t, dir, "ok.json", map[string]float64{
		"BenchmarkFast": 2.1e6, "BenchmarkSlow": 2.2e6,
	})
	if code, out, _ := runDiff(t, "-baseline", baseline, "-current", ok); code != 0 || !strings.Contains(out, "within") {
		t.Fatalf("healthy run: code %d, out %q", code, out)
	}

	// One regression beyond 20% → 1.
	reg := writeBench(t, dir, "reg.json", map[string]float64{
		"BenchmarkFast": 2e6, "BenchmarkSlow": 3e6,
	})
	code, out, stderr := runDiff(t, "-baseline", baseline, "-current", reg)
	if code != 1 {
		t.Fatalf("regressed run exited %d, want 1", code)
	}
	if !strings.Contains(out, "REG") || !strings.Contains(stderr, "regressed") {
		t.Fatalf("regression not reported: out %q stderr %q", out, stderr)
	}
}

// TestNothingLeftToGate: an over-narrow -match must fail loudly (exit 2), not
// pass an empty comparison.
func TestNothingLeftToGate(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBench(t, dir, "BENCH_base.json", map[string]float64{"BenchmarkFoo": 2e6})
	current := writeBench(t, dir, "current.json", map[string]float64{"BenchmarkFoo": 2e6})

	code, _, stderr := runDiff(t, "-baseline", baseline, "-current", current, "-match", "NoSuchBench")
	if code != 2 || !strings.Contains(stderr, "no benchmarks left to gate") {
		t.Fatalf("empty gate: code %d, stderr %q", code, stderr)
	}
}
