// Command runtimescaling reproduces artifact A4 (Fig. 8): the wall-clock
// breakdown (simulation / inner products / communication) of distributed
// Gram-matrix computation with the round-robin strategy, as the data-set
// size and the process count double together. It also prints the cost-model
// extrapolation the paper uses to project 64,000-point training runs.
//
// Usage:
//
//	runtimescaling [-qubits 165] [-layers 2] [-d 1] [-gamma 0.1] [-steps 64:2,128:4,256:8,512:16]
//	               [-transport chan] [-wire-latency-us 0] [-wire-mbps 0] [-csv out.csv]
//
// Paper-scale settings: -steps 400:2,800:4,1600:8,3200:16,6400:32. With
// -transport sim the comm bars price every shard message through the
// configured latency/bandwidth model instead of the free in-process wire —
// the knob that makes Fig. 8's communication column reflect a real cluster.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/dist"
	"repro/internal/experiments"
)

func parseSteps(s string) ([]experiments.Fig8Step, error) {
	var out []experiments.Fig8Step
	for _, part := range strings.Split(s, ",") {
		bits := strings.Split(strings.TrimSpace(part), ":")
		if len(bits) != 2 {
			return nil, fmt.Errorf("bad step %q (want size:procs)", part)
		}
		n, err := strconv.Atoi(bits[0])
		if err != nil {
			return nil, fmt.Errorf("bad size %q", bits[0])
		}
		k, err := strconv.Atoi(bits[1])
		if err != nil {
			return nil, fmt.Errorf("bad proc count %q", bits[1])
		}
		out = append(out, experiments.Fig8Step{DataSize: n, Procs: k})
	}
	return out, nil
}

func main() {
	qubits := flag.Int("qubits", 165, "number of qubits (features)")
	layers := flag.Int("layers", 2, "ansatz layers r")
	distance := flag.Int("d", 1, "interaction distance")
	gamma := flag.Float64("gamma", 0.1, "kernel bandwidth γ")
	steps := flag.String("steps", "64:2,128:4,256:8,512:16", "comma-separated size:procs pairs")
	seed := flag.Int64("seed", 1, "data seed")
	var wf dist.WireFlags
	wf.Register(flag.CommandLine)
	csvPath := flag.String("csv", "", "optional CSV output path")
	flag.Parse()

	st, err := parseSteps(*steps)
	if err != nil {
		fmt.Fprintln(os.Stderr, "runtimescaling:", err)
		os.Exit(1)
	}
	transport, err := wf.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "runtimescaling:", err)
		os.Exit(1)
	}
	res, err := experiments.RunFig8(experiments.Fig8Params{
		Qubits:    *qubits,
		Layers:    *layers,
		Distance:  *distance,
		Gamma:     *gamma,
		Steps:     st,
		Seed:      *seed,
		Transport: transport,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "runtimescaling:", err)
		os.Exit(1)
	}

	fmt.Printf("Fig. 8 — distributed Gram computation breakdown (round-robin over %s)\n", dist.TransportName(transport))
	fmt.Println(res.Table().Render())
	fmt.Println("extrapolations from measured per-op costs (paper section III-A):")
	for _, proj := range [][2]int{{6400, 32}, {64000, 320}, {64000, 640}} {
		fmt.Printf("  %6d points on %3d processes → %v\n",
			proj[0], proj[1], res.Extrapolate(proj[0], proj[1]).Round(1e9))
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.Table().CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "runtimescaling: writing csv:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
