package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/conformal/sdt"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/svm"
)

// runTrain is the `qkernel train` subcommand: fit through the core pipeline
// (Gram → C selection → SVM) and persist the trained model — ansatz options,
// SVM, training rows and the retained training states — with core's
// versioned codec, ready for `qkernel serve`.
func runTrain(args []string) int {
	fs := flag.NewFlagSet("qkernel train", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	distance := fs.Int("d", 1, "interaction distance")
	layers := fs.Int("layers", 2, "ansatz layers r")
	gamma := fs.Float64("gamma", 0.5, "kernel bandwidth γ")
	procs := fs.Int("procs", 4, "simulated distributed processes")
	strategyName := fs.String("strategy", "round-robin", "round-robin | no-messaging")
	var wf dist.WireFlags
	wf.Register(fs)
	var ff dist.FaultFlags
	ff.Register(fs)
	cacheMB := fs.Int("cache-mb", 256, "χ-aware simulated-state cache budget in MiB (0 disables)")
	batchBand := fs.Int("batch-band", 0, "rows materialised per lockstep band (one fused GEMM dispatch per gate position; 0 auto-sizes from cores and cache budget, 1 disables banding)")
	cFlag := fs.Float64("c", 0, "SVM box constraint (0 sweeps the paper's grid)")
	calibFrac := fs.Float64("calib-frac", 0, "fraction of training rows held out for conformal calibration (0 disables, max 0.5)")
	alpha := fs.Float64("alpha", 0, "conformal miscoverage level α (default 0.1 when -calib-frac is set)")
	out := fs.String("out", "", "write the trained model here (required)")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON of the run (load in Perfetto / chrome://tracing)")
	var lf obs.LogFlags
	lf.Register(fs)
	_ = fs.Parse(args)
	lf.Setup()
	if *out == "" {
		return fail(fmt.Errorf("train: -out is required"))
	}

	strategy, err := dist.ParseStrategy(*strategyName)
	if err != nil {
		return fail(err)
	}
	transport, err := wf.Build()
	if err != nil {
		return fail(err)
	}
	transport, err = ff.Wrap(transport)
	if err != nil {
		return fail(err)
	}
	train, test, err := df.split()
	if err != nil {
		return fail(err)
	}

	cacheBytes := int64(-1)
	if *cacheMB > 0 {
		cacheBytes = int64(*cacheMB) << 20
	}
	fw, err := core.New(core.Options{
		Features: df.features, Layers: *layers, Distance: *distance, Gamma: *gamma,
		C: *cFlag, Procs: *procs, Strategy: strategy, Transport: transport, CacheBytes: cacheBytes,
		BatchBand: *batchBand, CalibFrac: *calibFrac, Alpha: *alpha,
		DistDeadline: ff.Deadline, DistRetries: ff.Retries, DistBackoff: ff.Backoff,
	})
	if err != nil {
		return fail(err)
	}

	// With -trace, the whole run is recorded under one trace: the fit span
	// tree (gram → per-rank → per-row/cache spans) and the held-out
	// evaluation nest under the root, and the tree is written as Chrome
	// trace-event JSON on the way out.
	ctx := context.Background()
	var tr *obs.Trace
	if *tracePath != "" {
		tr = obs.NewTrace(obs.NewID(), "qkernel train")
		ctx = obs.ContextWithSpan(ctx, tr.Root())
	}

	t0 := time.Now()
	bandSrc := "auto-sized from cores and cache budget"
	if *batchBand > 0 {
		bandSrc = "set by -batch-band"
	}
	fmt.Printf("banded materialisation: %d rows per lockstep band (%s)\n", fw.BandWidth(), bandSrc)
	model, report, err := fw.FitCtx(ctx, train.X, train.Y)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("fit (%s over %s, %d procs): wall %v (sim %v, inner %v, comm %v), best C=%.2f, train AUC %.3f, %d support vectors\n",
		strategy, dist.TransportName(transport), *procs, report.GramWall.Round(time.Millisecond),
		report.SimWall.Round(time.Millisecond), report.InnerWall.Round(time.Millisecond),
		report.CommWall.Round(time.Millisecond), report.BestC, report.TrainAUC, report.SupportVecs)
	if report.Retries+report.Timeouts+report.RecoveredRows > 0 {
		fmt.Printf("fault recovery: %d send retries, %d recv timeouts, %d rows recovered locally\n",
			report.Retries, report.Timeouts, report.RecoveredRows)
	}
	if rc := report.RowCosts; rc.Count > 0 {
		fmt.Printf("row costs: %d rows simulated, min %v / mean %v / max %v, total %v\n",
			rc.Count, rc.Min.Round(time.Microsecond), rc.Mean.Round(time.Microsecond),
			rc.Max.Round(time.Microsecond), rc.Total.Round(time.Millisecond))
	}
	if report.Calibrated {
		cc := report.CalibCoverage
		fmt.Printf("calibration: %d held-out rows at α=%.2f — coverage %.3f, avg set size %.2f, abstain %.1f%%, outlier %.1f%%\n",
			report.CalibRows, report.Alpha, cc.Coverage, cc.AvgSetSize, 100*cc.AbstainRate, 100*cc.OutlierRate)
		if report.SDTValid {
			s := report.SDT
			fmt.Printf("SDT (confidence vs correctness, calibration rows): hit %.3f  false-alarm %.3f  d' %.2f  type-2 AUC %.3f\n",
				s.HitRate, s.FalseAlarmRate, s.DPrime, s.AUC)
		}
	}

	if test.Len() > 0 {
		// One cross-kernel pass covers both the point metrics and — on a
		// calibrated model — the conformal coverage and SDT summaries.
		scores, err := fw.PredictCtx(ctx, model, test.X)
		if err != nil {
			return fail(err)
		}
		met, err := svm.Evaluate(scores, test.Y)
		if err != nil {
			return fail(err)
		}
		fmt.Printf("held-out: AUC %.3f  recall %.3f  precision %.3f  accuracy %.3f\n",
			met.AUC, met.Recall, met.Precision, met.Accuracy)
		if model.Calibrated() {
			cov, err := model.Conformal.Coverage(scores, test.Y)
			if err != nil {
				return fail(err)
			}
			fmt.Printf("held-out conformal: coverage %.3f (target ≥ %.2f), avg set size %.2f, abstain %.1f%%, outlier %.1f%%\n",
				cov.Coverage, 1-model.Conformal.Alpha, cov.AvgSetSize, 100*cov.AbstainRate, 100*cov.OutlierRate)
			preds := model.Conformal.PredictBatch(scores)
			labels := make([]int, len(preds))
			conf := make([]float64, len(preds))
			for i, pr := range preds {
				labels[i], conf[i] = pr.Label, pr.Confidence
			}
			if s, err := sdt.FromPredictions(labels, conf, test.Y); err == nil {
				fmt.Printf("held-out SDT: hit %.3f  false-alarm %.3f  d' %.2f  type-2 AUC %.3f\n",
					s.HitRate, s.FalseAlarmRate, s.DPrime, s.AUC)
			} else if !errors.Is(err, sdt.ErrDegenerate) {
				return fail(err)
			}
		}
	}

	if tr != nil {
		tr.Root().End()
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		if err := obs.WriteChrome(f, tr); err != nil {
			f.Close()
			return fail(fmt.Errorf("trace: %w", err))
		}
		if err := f.Close(); err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		fmt.Printf("trace: wrote %s (%d events) — load in Perfetto or chrome://tracing\n",
			*tracePath, len(obs.ChromeEvents(tr)))
	}

	if err := model.Save(*out); err != nil {
		return fail(err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		return fail(err)
	}
	states := "no retained states (re-simulated at serve time)"
	if model.States != nil {
		states = fmt.Sprintf("%d retained training states", len(model.States))
	}
	fmt.Printf("saved %s (%.1f KiB, %s) in %v total\n",
		*out, float64(fi.Size())/1024, states, time.Since(t0).Round(time.Millisecond))
	return 0
}
