package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	servehttp "repro/internal/serve/http"
	"repro/internal/serve/registry"
)

// runServe is the `qkernel serve` subcommand: load one or more models
// persisted by `qkernel train -out`, keep them resident, and answer the v1
// multi-model HTTP surface (POST /v1/models/{name}/predict plus the legacy
// /predict on the default model) with per-model micro-batched kernel-row
// computation (see internal/serve, internal/serve/registry and
// internal/serve/http). The process logs its actual listen address on
// startup ("listening on ...") so scripts can bind -addr to port 0 and
// scrape the chosen port. SIGHUP hot-reloads every model whose file changed
// on disk; -admin exposes the same as POST /admin/reload.
func runServe(args []string) int {
	fs := flag.NewFlagSet("qkernel serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	modelPath := fs.String("model", "", "single model file written by `qkernel train -out` (registers as \"default\")")
	models := fs.String("models", "", "comma-separated name=path model list; the first is the default model")
	batch := fs.Int("batch", serve.DefaultMaxBatch, "max rows coalesced into one kernel computation (per model)")
	batchWait := fs.Duration("batch-wait", serve.DefaultMaxWait, "max time the first queued row waits for a batch to fill")
	queue := fs.Int("queue", serve.DefaultQueueDepth, "max queued requests per model before 429 backpressure")
	cacheMB := fs.Int("cache-mb", -1, "total state-cache budget in MiB shared across all models (-1 keeps each model's saved setting as its share, 0 disables)")
	procs := fs.Int("procs", 0, "override the models' simulated process count (0 keeps the saved settings)")
	batchBand := fs.Int("batch-band", 0, "override the models' banded state-materialisation width (0 keeps the saved settings / auto-sizing)")
	rateLimit := fs.Float64("rate-limit", 0, "per-API-key token-bucket rate limit in requests/second (0 disables)")
	rateBurst := fs.Int("rate-burst", 0, "rate-limit bucket capacity (0 derives from -rate-limit)")
	admin := fs.Bool("admin", false, "expose POST /admin/reload (hot model swap)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (port 0 picks a free port; empty disables)")
	traceRing := fs.Int("trace-ring", obs.DefaultRingCapacity, "recent request/batch traces retained for GET /debug/trace/{id} (0 disables tracing)")
	var lf obs.LogFlags
	lf.Register(fs)
	_ = fs.Parse(args)
	lf.Setup()

	var specs []registry.Spec
	var err error
	switch {
	case *models != "" && *modelPath != "":
		return fail(fmt.Errorf("serve: -model and -models are mutually exclusive"))
	case *models != "":
		if specs, err = registry.ParseSpecs(*models); err != nil {
			return fail(err)
		}
	case *modelPath != "":
		specs = []registry.Spec{{Name: "default", Path: *modelPath}}
	default:
		return fail(fmt.Errorf("serve: -model or -models is required"))
	}

	// One tracer is shared by the router (request traces, /debug/trace) and
	// every model's batcher (batch traces, phase reconstruction); nil keeps
	// both disabled while the latency histograms stay live.
	var tracer *obs.Tracer
	if *traceRing > 0 {
		tracer = obs.NewTracer(*traceRing)
	}

	regCfg := registry.Config{
		Procs:     *procs,
		BatchBand: *batchBand,
		Batch:     serve.Config{MaxBatch: *batch, MaxWait: *batchWait, QueueDepth: *queue, Obs: tracer},
	}
	switch {
	case *cacheMB > 0:
		regCfg.CacheBudget = int64(*cacheMB) << 20
	case *cacheMB == 0:
		regCfg.CacheBudget = -1
	}

	reg, err := registry.Open(specs, regCfg)
	if err != nil {
		return fail(err)
	}
	defer reg.Close()
	for _, mi := range reg.List() {
		states := "re-simulating training rows on demand"
		if mi.StatesResident {
			states = fmt.Sprintf("χ=%d states resident (%.1f MiB)", mi.Chi, float64(mi.StateBytes)/(1<<20))
		}
		def := ""
		if mi.Default {
			def = " [default]"
		}
		fmt.Printf("qkernel serve: model %q%s — %s, %d features, %d training rows, %s, cache share %.0f MiB\n",
			mi.Name, def, mi.Path, mi.Features, mi.TrainRows, states, float64(mi.CacheBudgetBytes)/(1<<20))
	}

	router := servehttp.NewRouter(reg, servehttp.Config{
		RateLimit:   *rateLimit,
		RateBurst:   *rateBurst,
		EnableAdmin: *admin,
		Obs:         tracer,
	})

	// The profiler listens on its own address so /debug/pprof is never part
	// of the public prediction surface.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fail(fmt.Errorf("pprof: %w", err))
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fmt.Printf("qkernel serve: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, pmux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				slog.Error("pprof server exited", "err", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	limits := "rate limit off"
	if *rateLimit > 0 {
		limits = fmt.Sprintf("rate limit %.3g req/s per key", *rateLimit)
	}
	adminState := "admin off"
	if *admin {
		adminState = "admin reload on"
	}
	traceState := "tracing off"
	if tracer.Enabled() {
		traceState = fmt.Sprintf("trace ring %d", *traceRing)
	}
	bandState := "sim band auto"
	if *batchBand > 0 {
		bandState = fmt.Sprintf("sim band %d", *batchBand)
	}
	fmt.Printf("qkernel serve: listening on http://%s (%d models, batch %d, batch-wait %v, queue %d, %s, %s, %s, %s)\n",
		ln.Addr(), len(specs), *batch, *batchWait, *queue, bandState, limits, adminState, traceState)

	// SIGHUP is the operator's hot-reload signal: re-stat every model path
	// and atomically swap the changed ones with zero dropped requests.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			// The registry logs the swap/fail detail itself; this loop only
			// narrates the no-op case at debug.
			for _, res := range reg.ReloadAll(false) {
				switch {
				case res.Error != "":
					slog.Warn("SIGHUP reload failed; old model keeps serving", "model", res.Name, "err", res.Error)
				case res.Swapped:
					slog.Info("SIGHUP reloaded model", "model", res.Name, "fingerprint", res.Fingerprint)
				default:
					slog.Debug("SIGHUP: model unchanged", "model", res.Name)
				}
			}
		}
	}()

	httpSrv := &http.Server{Handler: router.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		shutdownCtx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(err)
	}
	fmt.Println("qkernel serve: shut down")
	return 0
}
