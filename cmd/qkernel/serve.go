package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// runServe is the `qkernel serve` subcommand: load a model persisted by
// `qkernel train -out`, keep it resident, and answer POST /predict requests
// with micro-batched kernel-row computation (see internal/serve). The
// process logs its actual listen address on startup ("listening on ...") so
// scripts can bind -addr to port 0 and scrape the chosen port.
func runServe(args []string) int {
	fs := flag.NewFlagSet("qkernel serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	modelPath := fs.String("model", "", "model file written by `qkernel train -out` (required)")
	batch := fs.Int("batch", serve.DefaultMaxBatch, "max rows coalesced into one kernel computation")
	batchWait := fs.Duration("batch-wait", serve.DefaultMaxWait, "max time the first queued row waits for a batch to fill")
	queue := fs.Int("queue", serve.DefaultQueueDepth, "max queued requests before 429 backpressure")
	cacheMB := fs.Int("cache-mb", -1, "override the model's state-cache budget in MiB (-1 keeps the saved setting, 0 disables)")
	procs := fs.Int("procs", 0, "override the model's simulated process count (0 keeps the saved setting)")
	_ = fs.Parse(args)
	if *modelPath == "" {
		return fail(fmt.Errorf("serve: -model is required"))
	}

	fw, model, err := core.LoadModelTuned(*modelPath, func(o *core.Options) {
		if *procs > 0 {
			o.Procs = *procs
		}
		switch {
		case *cacheMB > 0:
			o.CacheBytes = int64(*cacheMB) << 20
		case *cacheMB == 0:
			o.CacheBytes = -1
		}
	})
	if err != nil {
		return fail(err)
	}
	opts := fw.Options()
	states := "re-simulating training rows on demand"
	if model.States != nil {
		states = fmt.Sprintf("%d training states resident", len(model.States))
	}
	fmt.Printf("qkernel serve: model %s — %d features, %d training rows, %s, %d procs\n",
		*modelPath, opts.Features, len(model.TrainX), states, opts.Procs)

	srv, err := serve.New(fw, model, serve.Config{
		MaxBatch:   *batch,
		MaxWait:    *batchWait,
		QueueDepth: *queue,
	})
	if err != nil {
		return fail(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("qkernel serve: listening on http://%s (batch %d, batch-wait %v, queue %d)\n",
		ln.Addr(), *batch, *batchWait, *queue)

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	go func() {
		<-ctx.Done()
		shutdownCtx, done := context.WithTimeout(context.Background(), 5*time.Second)
		defer done()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail(err)
	}
	fmt.Println("qkernel serve: shut down")
	return 0
}
