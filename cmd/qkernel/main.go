// Command qkernel is the end-to-end tool: generate (or reuse) a dataset,
// train the quantum-kernel SVM with a chosen ansatz and distribution
// strategy, and report classification metrics — the full pipeline of the
// paper in one invocation.
//
// Usage:
//
//	qkernel [-size 200] [-features 50] [-d 1] [-layers 2] [-gamma 0.5]
//	        [-procs 4] [-strategy round-robin] [-baseline] [-cache-mb 256]
//	        [-data file.csv] [-label-col 0] [-save model.json]
//
// With -data, samples are loaded from CSV (label column selectable; the
// Kaggle Elliptic export works directly) instead of the synthetic
// generator. With -save, the trained SVM is written as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/circuit"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/kernel"
	"repro/internal/statecache"
	"repro/internal/svm"
)

func main() {
	size := flag.Int("size", 200, "balanced sample size")
	features := flag.Int("features", 50, "feature count (qubits)")
	distance := flag.Int("d", 1, "interaction distance")
	layers := flag.Int("layers", 2, "ansatz layers r")
	gamma := flag.Float64("gamma", 0.5, "kernel bandwidth γ")
	procs := flag.Int("procs", 4, "simulated distributed processes")
	strategyName := flag.String("strategy", "round-robin", "round-robin | no-messaging")
	baseline := flag.Bool("baseline", false, "also train the Gaussian-kernel baseline")
	cacheMB := flag.Int("cache-mb", 256, "χ-aware simulated-state cache budget in MiB (0 disables)")
	seed := flag.Int64("seed", 1, "data seed")
	dataPath := flag.String("data", "", "optional CSV dataset (otherwise synthetic)")
	labelCol := flag.Int("label-col", 0, "label column index in the CSV")
	header := flag.Bool("header", false, "CSV has a header row")
	savePath := flag.String("save", "", "write the trained SVM model as JSON")
	flag.Parse()

	strategy, err := dist.ParseStrategy(*strategyName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qkernel:", err)
		os.Exit(1)
	}

	var full *dataset.Dataset
	if *dataPath != "" {
		var err error
		full, err = dataset.LoadCSVFile(*dataPath, *labelCol, *header)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qkernel:", err)
			os.Exit(1)
		}
		if full.Features() < *features {
			fmt.Fprintf(os.Stderr, "qkernel: CSV has %d features, requested %d\n", full.Features(), *features)
			os.Exit(1)
		}
		fmt.Printf("dataset: %s — %d samples (%d illicit / %d licit), %d features\n",
			*dataPath, full.Len(), full.CountLabel(dataset.Illicit), full.CountLabel(dataset.Licit), full.Features())
	} else {
		fmt.Printf("dataset: synthetic Elliptic-shaped, %d samples balanced, %d features\n", *size, *features)
		full = dataset.GenerateElliptic(dataset.EllipticConfig{Features: *features, NumIllicit: *size, NumLicit: *size, Seed: *seed})
	}
	train, test, err := dataset.PrepareSplit(full, *size, *features, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qkernel:", err)
		os.Exit(1)
	}
	fmt.Printf("split: %d train / %d test\n", train.Len(), test.Len())

	q := &kernel.Quantum{
		Ansatz: circuit.Ansatz{Qubits: *features, Layers: *layers, Distance: *distance, Gamma: *gamma},
	}
	if *cacheMB > 0 {
		q.Cache = statecache.New(int64(*cacheMB) << 20)
		if strategy == dist.NoMessaging {
			fmt.Println("note: the state cache dedupes no-messaging's redundant simulations; pass -cache-mb 0 to measure the pure compute-for-communication trade-off")
		}
	}
	t0 := time.Now()
	gramRes, err := dist.ComputeGram(q, train.X, *procs, strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qkernel: training kernel:", err)
		os.Exit(1)
	}
	sim, inner, comm := gramRes.MaxPhaseTimes()
	fmt.Printf("train Gram (%s, %d procs): wall %v (sim %v, inner %v, comm %v, %.1f MiB sent)\n",
		strategy, len(gramRes.Procs), gramRes.Wall.Round(time.Millisecond),
		sim.Round(time.Millisecond), inner.Round(time.Millisecond), comm.Round(time.Millisecond),
		float64(gramRes.TotalBytes())/(1<<20))

	// The retained training states make the inference kernel
	// communication-free: only the test rows are simulated.
	crossRes, err := dist.ComputeCrossStates(q, test.X, gramRes.States, *procs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qkernel: inference kernel:", err)
		os.Exit(1)
	}
	if q.Cache != nil {
		s := q.Cache.Stats()
		fmt.Printf("state cache: %d/%d hits (%.0f%%), %d resident states, %.1f/%.0f MiB used, %d evictions\n",
			s.Hits, s.Hits+s.Misses, 100*s.HitRate(), s.Entries,
			float64(s.Bytes)/(1<<20), float64(s.Budget)/(1<<20), s.Evictions)
	}

	model, met, bestC, err := svm.TrainBestC(gramRes.Gram, train.Y, crossRes.Gram, test.Y, nil, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qkernel: training svm:", err)
		os.Exit(1)
	}
	if *savePath != "" {
		blob, err := json.MarshalIndent(model, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "qkernel: encoding model:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*savePath, blob, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "qkernel: saving model:", err)
			os.Exit(1)
		}
		fmt.Println("saved model to", *savePath)
	}
	fmt.Printf("quantum kernel (d=%d, r=%d, γ=%.2f), best C=%.2f: AUC %.3f  recall %.3f  precision %.3f  accuracy %.3f\n",
		*distance, *layers, *gamma, bestC, met.AUC, met.Recall, met.Precision, met.Accuracy)
	fmt.Printf("total elapsed: %v\n", time.Since(t0).Round(time.Millisecond))

	if *baseline {
		g := kernel.NewGaussianFromData(train)
		_, gmet, gC, err := svm.TrainBestC(g.Gram(train.X), train.Y, g.Cross(test.X, train.X), test.Y, nil, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qkernel: gaussian baseline:", err)
			os.Exit(1)
		}
		fmt.Printf("gaussian baseline (α=%.4f), best C=%.2f: AUC %.3f  recall %.3f  precision %.3f  accuracy %.3f\n",
			g.Alpha, gC, gmet.AUC, gmet.Recall, gmet.Precision, gmet.Accuracy)
	}
}
