// Command qkernel is the end-to-end tool around the quantum-kernel
// framework. It has three modes:
//
//	qkernel [flags]        — legacy one-shot run: generate (or load) a
//	                         dataset, train with a chosen ansatz and
//	                         distribution strategy, report metrics.
//	qkernel train [flags]  — train through the core pipeline and persist the
//	                         model (-out model.bin) for serving.
//	qkernel serve [flags]  — load a persisted model and serve predictions
//	                         over HTTP with micro-batched kernel rows.
//
// The one-shot mode keeps its original flags:
//
//	qkernel [-size 200] [-features 50] [-d 1] [-layers 2] [-gamma 0.5]
//	        [-procs 4] [-strategy round-robin] [-baseline] [-cache-mb 256]
//	        [-transport chan] [-wire-latency-us 0] [-wire-mbps 0]
//	        [-data file.csv] [-label-col 0] [-save model.json]
//
// -transport selects the wire behind the distribution strategies: chan
// (in-process channels, the default), sim (the chan wire with a per-message
// latency/bandwidth/jitter cost model — tune it with -wire-latency-us,
// -wire-mbps and -wire-jitter-us) or tcp (real loopback TCP sockets). The
// kernel matrices are identical on every transport; only the communication
// accounting changes.
//
// Every distributed exchange is bounded by -dist-deadline and shard sends
// retry transient failures up to -dist-retries times with -dist-backoff
// exponential backoff. The -fault-* flags wrap the selected transport in a
// deterministic chaos layer (seeded message drops, duplicates, delays,
// transient send failures and whole-rank crashes); surviving ranks recover
// lost shards by local recomputation, so the kernel matrices — and the
// trained model — stay bit-identical to a fault-free run.
//
// With -data, samples are loaded from CSV (label column selectable; the
// Kaggle Elliptic export works directly) instead of the synthetic
// generator. With -save, the trained SVM is written as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/circuit"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/statecache"
	"repro/internal/svm"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "train":
			os.Exit(runTrain(os.Args[2:]))
		case "serve":
			os.Exit(runServe(os.Args[2:]))
		case "help":
			// The one-shot flag set's Usage names the subcommands too (as do
			// plain -h/--help, which fall through to it below).
			os.Exit(runLegacy([]string{"-h"}))
		}
	}
	os.Exit(runLegacy(os.Args[1:]))
}

// dataFlags bundles the dataset-selection flags shared by the one-shot run
// and the train subcommand.
type dataFlags struct {
	size     int
	features int
	seed     int64
	dataPath string
	labelCol int
	header   bool
}

func (d *dataFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&d.size, "size", 200, "balanced sample size")
	fs.IntVar(&d.features, "features", 50, "feature count (qubits)")
	fs.Int64Var(&d.seed, "seed", 1, "data seed")
	fs.StringVar(&d.dataPath, "data", "", "optional CSV dataset (otherwise synthetic)")
	fs.IntVar(&d.labelCol, "label-col", 0, "label column index in the CSV")
	fs.BoolVar(&d.header, "header", false, "CSV has a header row")
}

// split materialises the configured dataset and performs the paper's
// preprocessing split, narrating what it loaded.
func (d *dataFlags) split() (train, test *dataset.Dataset, err error) {
	var full *dataset.Dataset
	if d.dataPath != "" {
		full, err = dataset.LoadCSVFile(d.dataPath, d.labelCol, d.header)
		if err != nil {
			return nil, nil, err
		}
		if full.Features() < d.features {
			return nil, nil, fmt.Errorf("CSV has %d features, requested %d", full.Features(), d.features)
		}
		fmt.Printf("dataset: %s — %d samples (%d illicit / %d licit), %d features\n",
			d.dataPath, full.Len(), full.CountLabel(dataset.Illicit), full.CountLabel(dataset.Licit), full.Features())
	} else {
		fmt.Printf("dataset: synthetic Elliptic-shaped, %d samples balanced, %d features\n", d.size, d.features)
		full = dataset.GenerateElliptic(dataset.EllipticConfig{Features: d.features, NumIllicit: d.size, NumLicit: d.size, Seed: d.seed})
	}
	train, test, err = dataset.PrepareSplit(full, d.size, d.features, d.seed)
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("split: %d train / %d test\n", train.Len(), test.Len())
	return train, test, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "qkernel:", err)
	return 1
}

// reportRecovery narrates the fault-tolerance layer's work after a
// distributed computation: send retries, expired receive deadlines, rows
// recomputed locally, and — when the transport is a chaos wrapper — the
// faults it actually injected. Silent when nothing happened, so clean runs
// keep their output.
func reportRecovery(res *dist.Result, transport dist.Transport) {
	if r, t, rec := res.TotalRetries(), res.TotalTimeouts(), res.TotalRecoveredRows(); r+t+rec > 0 {
		fmt.Printf("fault recovery: %d send retries, %d recv timeouts, %d rows recovered locally\n", r, t, rec)
	}
	if ft, ok := transport.(*dist.FaultTransport); ok {
		s := ft.Stats()
		fmt.Printf("fault injection: %d dropped, %d duplicated, %d delayed, %d send failures, %d crashed-rank sends\n",
			s.Dropped, s.Duplicated, s.Delayed, s.SendFailures, s.CrashedSends)
	}
}

// runLegacy is the original one-shot pipeline: train, evaluate, report.
func runLegacy(args []string) int {
	fs := flag.NewFlagSet("qkernel", flag.ExitOnError)
	var df dataFlags
	df.register(fs)
	distance := fs.Int("d", 1, "interaction distance")
	layers := fs.Int("layers", 2, "ansatz layers r")
	gamma := fs.Float64("gamma", 0.5, "kernel bandwidth γ")
	procs := fs.Int("procs", 4, "simulated distributed processes")
	strategyName := fs.String("strategy", "round-robin", "round-robin | no-messaging")
	var wf dist.WireFlags
	wf.Register(fs)
	var ff dist.FaultFlags
	ff.Register(fs)
	baseline := fs.Bool("baseline", false, "also train the Gaussian-kernel baseline")
	cacheMB := fs.Int("cache-mb", 256, "χ-aware simulated-state cache budget in MiB (0 disables)")
	savePath := fs.String("save", "", "write the trained SVM model as JSON")
	var lf obs.LogFlags
	lf.Register(fs)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: qkernel [flags]        — one-shot run: train, evaluate, report (flags below)")
		fmt.Fprintln(os.Stderr, "       qkernel train [flags]  — train and persist a model ('qkernel train -h')")
		fmt.Fprintln(os.Stderr, "       qkernel serve [flags]  — serve a persisted model over HTTP ('qkernel serve -h')")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args)
	lf.Setup()

	strategy, err := dist.ParseStrategy(*strategyName)
	if err != nil {
		return fail(err)
	}
	transport, err := wf.Build()
	if err != nil {
		return fail(err)
	}
	transport, err = ff.Wrap(transport)
	if err != nil {
		return fail(err)
	}
	train, test, err := df.split()
	if err != nil {
		return fail(err)
	}

	q := &kernel.Quantum{
		Ansatz: circuit.Ansatz{Qubits: df.features, Layers: *layers, Distance: *distance, Gamma: *gamma},
	}
	if *cacheMB > 0 {
		q.Cache = statecache.New(int64(*cacheMB) << 20)
		if strategy == dist.NoMessaging {
			fmt.Println("note: the state cache dedupes no-messaging's redundant simulations; pass -cache-mb 0 to measure the pure compute-for-communication trade-off")
		}
	}
	distOpts := ff.Apply(dist.Options{Procs: *procs, Strategy: strategy, Transport: transport})
	t0 := time.Now()
	gramRes, err := dist.ComputeGram(q, train.X, distOpts)
	if err != nil {
		return fail(fmt.Errorf("training kernel: %w", err))
	}
	sim, inner, comm := gramRes.MaxPhaseTimes()
	fmt.Printf("train Gram (%s over %s, %d procs): wall %v (sim %v, inner %v, comm %v, %.1f MiB sent)\n",
		strategy, dist.TransportName(transport), len(gramRes.Procs), gramRes.Wall.Round(time.Millisecond),
		sim.Round(time.Millisecond), inner.Round(time.Millisecond), comm.Round(time.Millisecond),
		float64(gramRes.TotalBytes())/(1<<20))
	reportRecovery(gramRes, transport)

	// The retained training states make the inference kernel
	// communication-free: only the test rows are simulated.
	crossRes, err := dist.ComputeCrossStates(q, test.X, gramRes.States, distOpts)
	if err != nil {
		return fail(fmt.Errorf("inference kernel: %w", err))
	}
	if q.Cache != nil {
		s := q.Cache.Stats()
		fmt.Printf("state cache: %d/%d hits (%.0f%%), %d resident states, %.1f/%.0f MiB used, %d evictions\n",
			s.Hits, s.Hits+s.Misses, 100*s.HitRate(), s.Entries,
			float64(s.Bytes)/(1<<20), float64(s.Budget)/(1<<20), s.Evictions)
	}

	model, met, bestC, err := svm.TrainBestC(gramRes.Gram, train.Y, crossRes.Gram, test.Y, nil, 0)
	if err != nil {
		return fail(fmt.Errorf("training svm: %w", err))
	}
	if *savePath != "" {
		blob, err := json.MarshalIndent(model, "", "  ")
		if err != nil {
			return fail(fmt.Errorf("encoding model: %w", err))
		}
		if err := os.WriteFile(*savePath, blob, 0o644); err != nil {
			return fail(fmt.Errorf("saving model: %w", err))
		}
		fmt.Println("saved model to", *savePath)
	}
	fmt.Printf("quantum kernel (d=%d, r=%d, γ=%.2f), best C=%.2f: AUC %.3f  recall %.3f  precision %.3f  accuracy %.3f\n",
		*distance, *layers, *gamma, bestC, met.AUC, met.Recall, met.Precision, met.Accuracy)
	fmt.Printf("total elapsed: %v\n", time.Since(t0).Round(time.Millisecond))

	if *baseline {
		g := kernel.NewGaussianFromData(train)
		_, gmet, gC, err := svm.TrainBestC(g.Gram(train.X), train.Y, g.Cross(test.X, train.X), test.Y, nil, 0)
		if err != nil {
			return fail(fmt.Errorf("gaussian baseline: %w", err))
		}
		fmt.Printf("gaussian baseline (α=%.4f), best C=%.2f: AUC %.3f  recall %.3f  precision %.3f  accuracy %.3f\n",
			g.Alpha, gC, gmet.AUC, gmet.Recall, gmet.Precision, gmet.Accuracy)
	}
	return 0
}
