// Command table3 reproduces artifact A7 (Table III): the circuit-depth
// (ansatz repetition) ablation showing that deeper encoding circuits cause
// kernel concentration and degrade test performance.
//
// Usage:
//
//	table3 [-features 50] [-size 240] [-depths 2,4,8,12,16,20] [-runs 3] [-csv out.csv]
//
// Paper-scale settings: -size 400 -runs 6.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	features := flag.Int("features", 50, "feature count")
	size := flag.Int("size", 240, "balanced data size")
	distance := flag.Int("d", 1, "interaction distance")
	gamma := flag.Float64("gamma", 1.0, "kernel bandwidth γ")
	depthList := flag.String("depths", "2,4,8,12,16,20", "comma-separated ansatz repetitions")
	runs := flag.Int("runs", 3, "seeded runs to average (paper: 6)")
	seed := flag.Int64("seed", 1, "base data seed")
	csvPath := flag.String("csv", "", "optional CSV output path")
	flag.Parse()

	var depths []int
	for _, p := range strings.Split(*depthList, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			fmt.Fprintln(os.Stderr, "table3: bad depth:", p)
			os.Exit(1)
		}
		depths = append(depths, v)
	}

	res, err := experiments.RunTableIII(experiments.TableIIIParams{
		Features: *features,
		DataSize: *size,
		Distance: *distance,
		Gamma:    *gamma,
		Depths:   depths,
		Runs:     *runs,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "table3:", err)
		os.Exit(1)
	}

	fmt.Println("Table III — ansatz repetition (depth) effect on SVM performance")
	fmt.Println(res.Table().Render())
	if res.ShallowBeatsDeep() {
		fmt.Println("observation: shallow circuits beat deep ones — kernel concentration at depth (paper C2.3)")
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.Table().CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "table3: writing csv:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *csvPath)
	}
}
